package features

import (
	"math"
	"testing"

	"colocmodel/internal/harness"
	"colocmodel/internal/linalg"
	"colocmodel/internal/perfctr"
	"colocmodel/internal/xrand"
)

// testDataset builds a small synthetic dataset with known baselines.
func testDataset() *harness.Dataset {
	return &harness.Dataset{
		Machine:     "test",
		PStateFreqs: []float64{2.5, 2.0},
		LLCBytes:    1 << 20,
		Baselines: map[string]harness.Baseline{
			"tgt": {App: "tgt", SecondsByPState: []float64{100, 125},
				MemIntensity: 0.01, CMPerCA: 0.5, CAPerIns: 0.02},
			"co": {App: "co", SecondsByPState: []float64{200, 250},
				MemIntensity: 0.002, CMPerCA: 0.25, CAPerIns: 0.008},
		},
		Records: []harness.Record{
			{Machine: "test", PState: 0, FreqGHz: 2.5, Target: "tgt", CoApp: "co",
				NumCoLoc: 3, Seconds: 140, TrueSeconds: 139,
				Counts: perfctr.Counts{Instructions: 1000, Cycles: 2000, LLCMisses: 10, LLCAccesses: 20}},
			{Machine: "test", PState: 1, FreqGHz: 2.0, Target: "tgt", CoApp: "co",
				NumCoLoc: 1, Seconds: 150, TrueSeconds: 151,
				Counts: perfctr.Counts{Instructions: 1000, Cycles: 2500, LLCMisses: 12, LLCAccesses: 22}},
		},
	}
}

func TestFeatureNamesAndDescriptions(t *testing.T) {
	wantNames := []string{"baseExTime", "numCoApp", "coAppMem", "targetMem",
		"coAppCM/CA", "coAppCA/INS", "targetCM/CA", "targetCA/INS"}
	fs := AllFeatures()
	if len(fs) != 8 {
		t.Fatalf("got %d features, want 8 (Table I)", len(fs))
	}
	for i, f := range fs {
		if f.String() != wantNames[i] {
			t.Errorf("feature %d name %q, want %q", i, f.String(), wantNames[i])
		}
		if f.Describe() == "unknown" || f.Describe() == "" {
			t.Errorf("feature %s lacks description", f)
		}
	}
	if Feature(99).String() == "" || Feature(99).Describe() != "unknown" {
		t.Error("out-of-range feature misbehaves")
	}
}

func TestSetsAreNestedAF(t *testing.T) {
	sets := Sets()
	if len(sets) != 6 {
		t.Fatalf("got %d sets, want 6 (Table II)", len(sets))
	}
	wantSizes := []int{1, 2, 3, 4, 6, 8}
	names := "ABCDEF"
	for i, s := range sets {
		if s.Name != string(names[i]) {
			t.Errorf("set %d named %q", i, s.Name)
		}
		if len(s.Features) != wantSizes[i] {
			t.Errorf("set %s has %d features, want %d", s.Name, len(s.Features), wantSizes[i])
		}
		// Nesting: every feature of the previous set is present.
		if i > 0 {
			prev := sets[i-1].Features
			for _, pf := range prev {
				found := false
				for _, f := range s.Features {
					if f == pf {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("set %s missing %s from set %s", s.Name, pf, sets[i-1].Name)
				}
			}
		}
	}
	if sets[0].Features[0] != BaseExTime {
		t.Error("set A must be exactly baseExTime")
	}
}

func TestSetByName(t *testing.T) {
	s, err := SetByName("F")
	if err != nil || len(s.Features) != 8 {
		t.Fatalf("SetByName(F) = %+v, %v", s, err)
	}
	if _, err := SetByName("Z"); err == nil {
		t.Fatal("unknown set accepted")
	}
}

func TestValueComputesTableI(t *testing.T) {
	ds := testDataset()
	sc := Scenario{Target: "tgt", CoApps: []string{"co", "co", "co"}, PState: 1}
	want := map[Feature]float64{
		BaseExTime:  125,
		NumCoApp:    3,
		CoAppMem:    3 * 0.002,
		TargetMem:   0.01,
		CoAppCMCA:   3 * 0.25,
		CoAppCAINS:  3 * 0.008,
		TargetCMCA:  0.5,
		TargetCAINS: 0.02,
	}
	for f, w := range want {
		got, err := Value(f, ds, sc)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if math.Abs(got-w) > 1e-12 {
			t.Errorf("%s = %v, want %v", f, got, w)
		}
	}
}

func TestValueErrors(t *testing.T) {
	ds := testDataset()
	if _, err := Value(BaseExTime, ds, Scenario{Target: "ghost"}); err == nil {
		t.Fatal("missing target baseline accepted")
	}
	if _, err := Value(BaseExTime, ds, Scenario{Target: "tgt", PState: 9}); err == nil {
		t.Fatal("bad P-state accepted")
	}
	if _, err := Value(CoAppMem, ds, Scenario{Target: "tgt", CoApps: []string{"ghost"}}); err == nil {
		t.Fatal("missing co-app baseline accepted")
	}
	if _, err := Value(Feature(99), ds, Scenario{Target: "tgt"}); err == nil {
		t.Fatal("unknown feature accepted")
	}
}

func TestScenarioFromRecord(t *testing.T) {
	ds := testDataset()
	sc := ScenarioFromRecord(ds.Records[0])
	if sc.Target != "tgt" || len(sc.CoApps) != 3 || sc.CoApps[0] != "co" || sc.PState != 0 {
		t.Fatalf("scenario = %+v", sc)
	}
}

func TestVectorOrderMatchesSet(t *testing.T) {
	ds := testDataset()
	set, _ := SetByName("C")
	v, err := Vector(set, ds, ScenarioFromRecord(ds.Records[0]))
	if err != nil {
		t.Fatal(err)
	}
	// C = baseExTime, numCoApp, coAppMem.
	if v[0] != 100 || v[1] != 3 || math.Abs(v[2]-0.006) > 1e-12 {
		t.Fatalf("vector = %v", v)
	}
}

func TestMatrixShapeAndLabels(t *testing.T) {
	ds := testDataset()
	set, _ := SetByName("F")
	x, y, err := Matrix(set, ds, ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows != 2 || x.Cols != 8 {
		t.Fatalf("matrix %dx%d", x.Rows, x.Cols)
	}
	if y[0] != 140 || y[1] != 150 {
		t.Fatalf("labels = %v (must be measured seconds)", y)
	}
	if _, _, err := Matrix(set, ds, nil); err == nil {
		t.Fatal("empty records accepted")
	}
}

func TestFullMatrixEightColumns(t *testing.T) {
	ds := testDataset()
	x, err := FullMatrix(ds, ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	if x.Cols != 8 {
		t.Fatalf("full matrix has %d columns", x.Cols)
	}
}

func TestScalerStandardises(t *testing.T) {
	src := xrand.New(1)
	x := linalg.NewMatrix(200, 3)
	for i := 0; i < x.Rows; i++ {
		x.Set(i, 0, src.Normal(100, 25))
		x.Set(i, 1, src.Normal(-3, 0.1))
		x.Set(i, 2, 7) // constant column
	}
	s := FitScaler(x)
	xt, err := s.Transform(x)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		mean, ss := 0.0, 0.0
		for i := 0; i < xt.Rows; i++ {
			mean += xt.At(i, j)
		}
		mean /= float64(xt.Rows)
		for i := 0; i < xt.Rows; i++ {
			d := xt.At(i, j) - mean
			ss += d * d
		}
		std := math.Sqrt(ss / float64(xt.Rows-1))
		if math.Abs(mean) > 1e-9 || math.Abs(std-1) > 1e-9 {
			t.Fatalf("col %d: mean %v std %v after scaling", j, mean, std)
		}
	}
	// Constant column: centred, not exploded.
	if xt.At(0, 2) != 0 {
		t.Fatalf("constant column transformed to %v", xt.At(0, 2))
	}
}

func TestScalerVecAndErrors(t *testing.T) {
	x := linalg.NewMatrixFromRows([][]float64{{1, 10}, {3, 30}})
	s := FitScaler(x)
	v, err := s.TransformVec([]float64{2, 20})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[0]) > 1e-12 || math.Abs(v[1]) > 1e-12 {
		t.Fatalf("midpoint vector not zero: %v", v)
	}
	if _, err := s.TransformVec([]float64{1}); err == nil {
		t.Fatal("wrong-length vector accepted")
	}
	if _, err := s.Transform(linalg.NewMatrix(2, 3)); err == nil {
		t.Fatal("wrong-width matrix accepted")
	}
}

func TestVecScalerRoundTrip(t *testing.T) {
	y := []float64{100, 200, 300, 400}
	s := FitVecScaler(y)
	yt := s.Transform(y)
	for i, v := range yt {
		back := s.Inverse(v)
		if math.Abs(back-y[i]) > 1e-9 {
			t.Fatalf("round trip %v -> %v -> %v", y[i], v, back)
		}
	}
	// Degenerate cases.
	s0 := FitVecScaler(nil)
	if s0.Std != 1 {
		t.Fatal("empty scaler std != 1")
	}
	s1 := FitVecScaler([]float64{5, 5, 5})
	if s1.Std != 1 || s1.Mean != 5 {
		t.Fatalf("constant scaler = %+v", s1)
	}
}

func TestWithInteractions(t *testing.T) {
	setF, _ := SetByName("F")
	aug := WithInteractions(setF)
	if aug.Name != "F+x" {
		t.Fatalf("name = %q", aug.Name)
	}
	if len(aug.Interactions) != 6 {
		t.Fatalf("got %d interactions, want 6", len(aug.Interactions))
	}
	if aug.Width() != 14 {
		t.Fatalf("width = %d, want 14", aug.Width())
	}
	// Set A has only baseExTime: no valid pairs.
	setA, _ := SetByName("A")
	if got := WithInteractions(setA); len(got.Interactions) != 0 {
		t.Fatalf("set A gained %d interactions", len(got.Interactions))
	}
	// Set C: baseExTime, numCoApp, coAppMem -> baseEx×num, baseEx×coMem.
	setC, _ := SetByName("C")
	if got := WithInteractions(setC); len(got.Interactions) != 2 {
		t.Fatalf("set C gained %d interactions, want 2", len(got.Interactions))
	}
}

func TestVectorWithInteractions(t *testing.T) {
	ds := testDataset()
	setC, _ := SetByName("C")
	aug := WithInteractions(setC)
	sc := ScenarioFromRecord(ds.Records[0]) // baseEx=100, num=3, coMem=0.006
	v, err := Vector(aug, ds, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 5 {
		t.Fatalf("vector length %d, want 5", len(v))
	}
	if math.Abs(v[3]-300) > 1e-9 { // baseEx×num
		t.Fatalf("baseEx×num = %v, want 300", v[3])
	}
	if math.Abs(v[4]-0.6) > 1e-9 { // baseEx×coMem
		t.Fatalf("baseEx×coMem = %v, want 0.6", v[4])
	}
}

func TestMatrixWidthWithInteractions(t *testing.T) {
	ds := testDataset()
	setC, _ := SetByName("C")
	aug := WithInteractions(setC)
	x, _, err := Matrix(aug, ds, ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	if x.Cols != aug.Width() {
		t.Fatalf("matrix has %d cols, want %d", x.Cols, aug.Width())
	}
}
