// Package features implements Table I of the paper (the eight model
// features) and Table II (the six nested feature-set groups A–F used to
// build models of increasing fidelity).
//
// A crucial property of the methodology is that every feature is computed
// from *baseline* measurements only — the single serial measurement of
// each application running alone — plus knowledge of which applications
// are scheduled together. No counter is read during co-located execution,
// which is what makes the models usable by a resource manager at
// scheduling time.
package features

import (
	"fmt"

	"colocmodel/internal/harness"
	"colocmodel/internal/linalg"
)

// Feature identifies one of the eight Table I features.
type Feature int

const (
	// BaseExTime is the baseline execution time of the target application
	// at the P-state of the run.
	BaseExTime Feature = iota
	// NumCoApp is the number of co-located applications.
	NumCoApp
	// CoAppMem is the sum of the co-located applications' baseline memory
	// intensities.
	CoAppMem
	// TargetMem is the target application's baseline memory intensity.
	TargetMem
	// CoAppCMCA is the sum of co-located applications' baseline LLC
	// misses per LLC access.
	CoAppCMCA
	// CoAppCAINS is the sum of co-located applications' baseline LLC
	// accesses per instruction.
	CoAppCAINS
	// TargetCMCA is the target's baseline LLC misses per LLC access.
	TargetCMCA
	// TargetCAINS is the target's baseline LLC accesses per instruction.
	TargetCAINS

	numFeatures
)

// Valid reports whether f is one of the eight Table I features. Model
// artefacts are an untrusted boundary at load time, so deserialisation
// checks every feature index against this before building a set.
func (f Feature) Valid() bool { return f >= 0 && f < numFeatures }

// String returns the paper's feature name.
func (f Feature) String() string {
	switch f {
	case BaseExTime:
		return "baseExTime"
	case NumCoApp:
		return "numCoApp"
	case CoAppMem:
		return "coAppMem"
	case TargetMem:
		return "targetMem"
	case CoAppCMCA:
		return "coAppCM/CA"
	case CoAppCAINS:
		return "coAppCA/INS"
	case TargetCMCA:
		return "targetCM/CA"
	case TargetCAINS:
		return "targetCA/INS"
	default:
		return fmt.Sprintf("Feature(%d)", int(f))
	}
}

// Describe returns the "aspect of execution measured" column of Table I.
func (f Feature) Describe() string {
	switch f {
	case BaseExTime:
		return "baseline execution time of target application at all P-states"
	case NumCoApp:
		return "number of co-located applications"
	case CoAppMem:
		return "sum of co-application memory intensities"
	case TargetMem:
		return "target application memory intensity"
	case CoAppCMCA:
		return "sum of co-application last-level cache misses/cache accesses"
	case CoAppCAINS:
		return "sum of co-application last-level cache accesses/instructions"
	case TargetCMCA:
		return "target application last-level cache misses/cache accesses"
	case TargetCAINS:
		return "target application last-level cache accesses/instructions"
	default:
		return "unknown"
	}
}

// AllFeatures lists the eight Table I features in order.
func AllFeatures() []Feature {
	out := make([]Feature, numFeatures)
	for i := range out {
		out[i] = Feature(i)
	}
	return out
}

// Set is one Table II feature group, optionally augmented with pairwise
// product (interaction) terms for the linear-model ablation.
type Set struct {
	// Name is the set letter, "A" through "F" (suffixed "+x" when
	// interactions are added).
	Name string
	// Features are the included Table I features.
	Features []Feature
	// Interactions lists product terms appended after the base features:
	// each entry contributes one column valued f[0]·f[1]. The paper's
	// models use none; WithInteractions builds augmented sets for the
	// "can a linear model close the gap?" ablation.
	Interactions [][2]Feature
}

// Width returns the number of columns the set produces.
func (s Set) Width() int { return len(s.Features) + len(s.Interactions) }

// WithInteractions returns a copy of s augmented with the physically
// motivated product terms: slowdown is multiplicative in the baseline
// time, so baseExTime is crossed with every co-runner pressure feature
// present, and the target's memory intensity is crossed with the
// co-runners' (contention hurts most when both sides are memory-bound).
func WithInteractions(s Set) Set {
	out := Set{Name: s.Name + "+x", Features: append([]Feature(nil), s.Features...)}
	has := map[Feature]bool{}
	for _, f := range s.Features {
		has[f] = true
	}
	add := func(a, b Feature) {
		if has[a] && has[b] {
			out.Interactions = append(out.Interactions, [2]Feature{a, b})
		}
	}
	add(BaseExTime, NumCoApp)
	add(BaseExTime, CoAppMem)
	add(BaseExTime, CoAppCMCA)
	add(BaseExTime, CoAppCAINS)
	add(TargetMem, CoAppMem)
	add(TargetCAINS, CoAppMem)
	return out
}

// Sets returns the six nested Table II feature sets:
//
//	A: baseExTime
//	B: A + numCoApp
//	C: B + coAppMem
//	D: C + targetMem
//	E: D + coAppCM/CA, coAppCA/INS
//	F: E + targetCM/CA, targetCA/INS
func Sets() []Set {
	return []Set{
		{Name: "A", Features: []Feature{BaseExTime}},
		{Name: "B", Features: []Feature{BaseExTime, NumCoApp}},
		{Name: "C", Features: []Feature{BaseExTime, NumCoApp, CoAppMem}},
		{Name: "D", Features: []Feature{BaseExTime, NumCoApp, CoAppMem, TargetMem}},
		{Name: "E", Features: []Feature{BaseExTime, NumCoApp, CoAppMem, TargetMem, CoAppCMCA, CoAppCAINS}},
		{Name: "F", Features: []Feature{BaseExTime, NumCoApp, CoAppMem, TargetMem, CoAppCMCA, CoAppCAINS, TargetCMCA, TargetCAINS}},
	}
}

// SetByName returns the Table II set with the given letter.
func SetByName(name string) (Set, error) {
	for _, s := range Sets() {
		if s.Name == name {
			return s, nil
		}
	}
	return Set{}, fmt.Errorf("features: unknown feature set %q (want A-F)", name)
}

// Scenario is the schedule-time description of a co-location: the target,
// the co-located applications, and the P-state. It is all a resource
// manager knows before running anything.
type Scenario struct {
	// Target is the target application name.
	Target string
	// CoApps are the co-located application names (one entry per copy).
	CoApps []string
	// PState is the P-state index the processor will run at.
	PState int
}

// ScenarioFromRecord reconstructs the scenario of a harness record (the
// harness runs homogeneous co-runners).
func ScenarioFromRecord(r harness.Record) Scenario {
	co := make([]string, r.NumCoLoc)
	for i := range co {
		co[i] = r.CoApp
	}
	return Scenario{Target: r.Target, CoApps: co, PState: r.PState}
}

// Value computes one feature for a scenario from baseline data only.
func Value(f Feature, ds *harness.Dataset, sc Scenario) (float64, error) {
	tb, err := ds.Baseline(sc.Target)
	if err != nil {
		return 0, err
	}
	switch f {
	case BaseExTime:
		if sc.PState < 0 || sc.PState >= len(tb.SecondsByPState) {
			return 0, fmt.Errorf("features: P-state %d not in baseline for %s", sc.PState, sc.Target)
		}
		return tb.SecondsByPState[sc.PState], nil
	case NumCoApp:
		return float64(len(sc.CoApps)), nil
	case TargetMem:
		return tb.MemIntensity, nil
	case TargetCMCA:
		return tb.CMPerCA, nil
	case TargetCAINS:
		return tb.CAPerIns, nil
	case CoAppMem, CoAppCMCA, CoAppCAINS:
		sum := 0.0
		for _, name := range sc.CoApps {
			cb, err := ds.Baseline(name)
			if err != nil {
				return 0, err
			}
			switch f {
			case CoAppMem:
				sum += cb.MemIntensity
			case CoAppCMCA:
				sum += cb.CMPerCA
			default:
				sum += cb.CAPerIns
			}
		}
		return sum, nil
	default:
		return 0, fmt.Errorf("features: unknown feature %d", int(f))
	}
}

// Vector computes the feature vector of a scenario for one Table II set,
// base features first, then any interaction products.
func Vector(set Set, ds *harness.Dataset, sc Scenario) ([]float64, error) {
	out := make([]float64, 0, set.Width())
	vals := map[Feature]float64{}
	for _, f := range set.Features {
		v, err := Value(f, ds, sc)
		if err != nil {
			return nil, err
		}
		vals[f] = v
		out = append(out, v)
	}
	for _, pair := range set.Interactions {
		a, ok := vals[pair[0]]
		if !ok {
			var err error
			if a, err = Value(pair[0], ds, sc); err != nil {
				return nil, err
			}
		}
		b, ok := vals[pair[1]]
		if !ok {
			var err error
			if b, err = Value(pair[1], ds, sc); err != nil {
				return nil, err
			}
		}
		out = append(out, a*b)
	}
	return out, nil
}

// Matrix builds the design matrix X and label vector y (measured
// co-located execution times) for the given records.
func Matrix(set Set, ds *harness.Dataset, records []harness.Record) (*linalg.Matrix, []float64, error) {
	if len(records) == 0 {
		return nil, nil, fmt.Errorf("features: no records")
	}
	x := linalg.NewMatrix(len(records), set.Width())
	y := make([]float64, len(records))
	for i, r := range records {
		v, err := Vector(set, ds, ScenarioFromRecord(r))
		if err != nil {
			return nil, nil, err
		}
		copy(x.Data[i*x.Cols:(i+1)*x.Cols], v)
		y[i] = r.Seconds
	}
	return x, y, nil
}

// MatrixScenarios builds the design matrix for explicit scenarios with
// the given labels (measured execution times). It is the heterogeneous
// counterpart of Matrix.
func MatrixScenarios(set Set, ds *harness.Dataset, scs []Scenario, labels []float64) (*linalg.Matrix, []float64, error) {
	if len(scs) == 0 {
		return nil, nil, fmt.Errorf("features: no scenarios")
	}
	if len(scs) != len(labels) {
		return nil, nil, fmt.Errorf("features: %d scenarios but %d labels", len(scs), len(labels))
	}
	x := linalg.NewMatrix(len(scs), set.Width())
	y := make([]float64, len(scs))
	for i, sc := range scs {
		v, err := Vector(set, ds, sc)
		if err != nil {
			return nil, nil, err
		}
		copy(x.Data[i*x.Cols:(i+1)*x.Cols], v)
		y[i] = labels[i]
	}
	return x, y, nil
}

// FullMatrix builds the design matrix over all eight features, used by the
// PCA feature-ranking step.
func FullMatrix(ds *harness.Dataset, records []harness.Record) (*linalg.Matrix, error) {
	set := Set{Name: "full", Features: AllFeatures()}
	x, _, err := Matrix(set, ds, records)
	return x, err
}
