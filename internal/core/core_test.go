package core

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"colocmodel/internal/features"
	"colocmodel/internal/harness"
	"colocmodel/internal/simproc"
	"colocmodel/internal/workload"
)

// testDataset collects a reduced 6-core dataset once and shares it across
// tests (collection is deterministic).
var (
	dsOnce sync.Once
	dsVal  *harness.Dataset
	dsErr  error
)

func testDataset(t testing.TB) *harness.Dataset {
	t.Helper()
	dsOnce.Do(func() {
		cg, _ := workload.ByName("cg")
		sp, _ := workload.ByName("sp")
		ep, _ := workload.ByName("ep")
		canneal, _ := workload.ByName("canneal")
		fluid, _ := workload.ByName("fluidanimate")
		plan := harness.Plan{
			Spec:       simproc.XeonE5649(),
			Targets:    []workload.App{cg, canneal, fluid, ep},
			CoApps:     []workload.App{cg, sp, ep},
			CoCounts:   []int{1, 2, 3, 5},
			PStates:    []int{0, 2, 4},
			NoiseSigma: 0.01,
			Seed:       5,
		}
		dsVal, dsErr = harness.Collect(plan)
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsVal
}

func TestTechniqueString(t *testing.T) {
	if Linear.String() != "linear" || NeuralNet.String() != "neural-net" {
		t.Fatal("technique names wrong")
	}
	if Technique(9).String() == "" {
		t.Fatal("unknown technique empty")
	}
}

func TestAllSpecsTwelveModels(t *testing.T) {
	specs := AllSpecs(1)
	if len(specs) != 12 {
		t.Fatalf("got %d specs, want 12 (Section V)", len(specs))
	}
	if specs[0].Technique != Linear || specs[0].FeatureSet.Name != "A" {
		t.Fatal("first spec not linear-A")
	}
	if specs[11].Technique != NeuralNet || specs[11].FeatureSet.Name != "F" {
		t.Fatal("last spec not neural-net-F")
	}
	if specs[5].String() != "linear-F" || specs[6].String() != "neural-net-A" {
		t.Fatalf("spec names wrong: %s, %s", specs[5], specs[6])
	}
}

func TestDefaultHiddenNodesInPaperRange(t *testing.T) {
	// "vary in the number of nodes used from ten to twenty depending on
	// the model feature set".
	for _, set := range features.Sets() {
		h := defaultHiddenNodes(len(set.Features))
		if h < 10 || h > 20 {
			t.Errorf("set %s: %d hidden nodes outside [10,20]", set.Name, h)
		}
	}
	if defaultHiddenNodes(1) != 10 || defaultHiddenNodes(8) != 20 {
		t.Fatal("endpoint widths wrong")
	}
}

func TestTrainLinearAndPredict(t *testing.T) {
	ds := testDataset(t)
	set, _ := features.SetByName("C")
	m, err := Train(Spec{Technique: Linear, FeatureSet: set}, ds, ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(features.ScenarioFromRecord(ds.Records[0]))
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 0 || math.IsNaN(pred) {
		t.Fatalf("prediction = %v", pred)
	}
	mpe, nrmse, err := m.Errors(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	if mpe <= 0 || mpe > 30 || nrmse <= 0 {
		t.Fatalf("training errors MPE=%v NRMSE=%v", mpe, nrmse)
	}
}

func TestTrainNeuralBeatsLinearOnTrainingData(t *testing.T) {
	ds := testDataset(t)
	set, _ := features.SetByName("F")
	lin, err := Train(Spec{Technique: Linear, FeatureSet: set}, ds, ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	nn, err := Train(Spec{Technique: NeuralNet, FeatureSet: set, Seed: 3}, ds, ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	linMPE, _, err := lin.Errors(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	nnMPE, _, err := nn.Errors(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	if nnMPE >= linMPE {
		t.Fatalf("NN-F training MPE %v not better than linear-F %v", nnMPE, linMPE)
	}
}

func TestTrainErrors(t *testing.T) {
	ds := testDataset(t)
	set, _ := features.SetByName("A")
	if _, err := Train(Spec{Technique: Linear, FeatureSet: set}, nil, nil); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := Train(Spec{Technique: Linear}, ds, ds.Records); err == nil {
		t.Fatal("empty feature set accepted")
	}
	if _, err := Train(Spec{Technique: Technique(9), FeatureSet: set}, ds, ds.Records); err == nil {
		t.Fatal("unknown technique accepted")
	}
	if _, err := Train(Spec{Technique: Linear, FeatureSet: set}, ds, nil); err == nil {
		t.Fatal("no records accepted")
	}
}

func TestUntrainedModelRejectsPredict(t *testing.T) {
	m := &Model{Spec: Spec{FeatureSet: features.Sets()[0]}}
	if _, err := m.predictVector([]float64{1}); err == nil {
		t.Fatal("untrained model predicted")
	}
}

func TestPredictUnknownAppFails(t *testing.T) {
	ds := testDataset(t)
	set, _ := features.SetByName("A")
	m, err := Train(Spec{Technique: Linear, FeatureSet: set}, ds, ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(features.Scenario{Target: "ghost", PState: 0}); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestPredictedSlowdown(t *testing.T) {
	ds := testDataset(t)
	set, _ := features.SetByName("F")
	m, err := Train(Spec{Technique: NeuralNet, FeatureSet: set, Seed: 2}, ds, ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy scenario: canneal + 5 cg must predict a slowdown > 1.
	sc := features.Scenario{Target: "canneal", CoApps: []string{"cg", "cg", "cg", "cg", "cg"}, PState: 0}
	sd, err := m.PredictedSlowdown(sc)
	if err != nil {
		t.Fatal(err)
	}
	if sd < 1.02 || sd > 3 {
		t.Fatalf("canneal+5cg predicted slowdown %v", sd)
	}
	// Light scenario: canneal + 1 ep should predict a smaller slowdown.
	light, err := m.PredictedSlowdown(features.Scenario{Target: "canneal", CoApps: []string{"ep"}, PState: 0})
	if err != nil {
		t.Fatal(err)
	}
	if light >= sd {
		t.Fatalf("light scenario slowdown %v ≥ heavy %v", light, sd)
	}
	if _, err := m.PredictedSlowdown(features.Scenario{Target: "canneal", PState: 99}); err == nil {
		t.Fatal("bad P-state accepted")
	}
}

func TestEvaluateProtocol(t *testing.T) {
	ds := testDataset(t)
	set, _ := features.SetByName("C")
	res, err := Evaluate(Spec{Technique: Linear, FeatureSet: set}, ds,
		EvalConfig{Partitions: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerPartition) != 10 {
		t.Fatalf("got %d partitions", len(res.PerPartition))
	}
	if res.TestMPE <= 0 || res.TrainMPE <= 0 {
		t.Fatalf("errors: %+v", res)
	}
	// The paper observes per-partition variation "at most a quarter of a
	// percent"; our CI must likewise be tight.
	if res.TestMPECI > 0.5 {
		t.Fatalf("test MPE CI %v too wide", res.TestMPECI)
	}
	// Train and test errors must be of similar magnitude (no leak, no
	// catastrophic overfit in the linear model).
	if res.TestMPE > 3*res.TrainMPE {
		t.Fatalf("linear model overfits: train %v test %v", res.TrainMPE, res.TestMPE)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	ds := testDataset(t)
	set, _ := features.SetByName("B")
	cfg := EvalConfig{Partitions: 5, Seed: 9}
	a, err := Evaluate(Spec{Technique: Linear, FeatureSet: set}, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(Spec{Technique: Linear, FeatureSet: set}, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TestMPE != b.TestMPE || a.TrainNRMSE != b.TrainNRMSE {
		t.Fatal("evaluation not deterministic")
	}
}

func TestEvaluateErrors(t *testing.T) {
	set, _ := features.SetByName("A")
	tiny := &harness.Dataset{Records: make([]harness.Record, 3)}
	if _, err := Evaluate(Spec{Technique: Linear, FeatureSet: set}, tiny, EvalConfig{Partitions: 2}); err == nil {
		t.Fatal("tiny dataset accepted")
	}
	ds := testDataset(t)
	if _, err := Evaluate(Spec{Technique: Technique(9), FeatureSet: set}, ds, EvalConfig{Partitions: 2}); err == nil {
		t.Fatal("bad technique accepted")
	}
}

// TestHeadlineShape verifies the central Section V result on a reduced
// dataset: neural-network accuracy improves as co-runner cache features
// are added, and the full-feature neural model beats every linear model.
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation is slow")
	}
	ds := testDataset(t)
	cfg := EvalConfig{Partitions: 6, Seed: 11}
	results, err := EvaluateAll(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*EvalResult{}
	for _, r := range results {
		byName[r.Spec.String()] = r
	}
	// NN improves from A to F substantially.
	if byName["neural-net-F"].TestMPE > 0.75*byName["neural-net-A"].TestMPE {
		t.Fatalf("NN A->F improvement too small: %v -> %v",
			byName["neural-net-A"].TestMPE, byName["neural-net-F"].TestMPE)
	}
	// NN-F beats linear-F.
	if byName["neural-net-F"].TestMPE >= byName["linear-F"].TestMPE {
		t.Fatalf("NN-F (%v) not better than linear-F (%v)",
			byName["neural-net-F"].TestMPE, byName["linear-F"].TestMPE)
	}
	// Every model beats a 30% error strawman and is positive.
	for name, r := range byName {
		if r.TestMPE <= 0 || r.TestMPE > 30 {
			t.Fatalf("%s test MPE %v implausible", name, r.TestMPE)
		}
	}
	// Results arrive in AllSpecs order.
	if !strings.HasPrefix(results[0].Spec.String(), "linear-A") {
		t.Fatal("results out of order")
	}
}

func BenchmarkTrainLinearF(b *testing.B) {
	ds := testDataset(b)
	set, _ := features.SetByName("F")
	spec := Spec{Technique: Linear, FeatureSet: set}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(spec, ds, ds.Records); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainNeuralF(b *testing.B) {
	ds := testDataset(b)
	set, _ := features.SetByName("F")
	spec := Spec{Technique: NeuralNet, FeatureSet: set, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(spec, ds, ds.Records); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	ds := testDataset(b)
	set, _ := features.SetByName("F")
	m, err := Train(Spec{Technique: NeuralNet, FeatureSet: set, Seed: 1}, ds, ds.Records)
	if err != nil {
		b.Fatal(err)
	}
	sc := features.ScenarioFromRecord(ds.Records[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func TestKFoldMatchesBootstrapBallpark(t *testing.T) {
	ds := testDataset(t)
	set, _ := features.SetByName("C")
	spec := Spec{Technique: Linear, FeatureSet: set}
	boot, err := Evaluate(spec, ds, EvalConfig{Partitions: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	kf, err := KFold(spec, ds, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if kf.Folds != 5 || len(kf.PerFold) != 5 {
		t.Fatalf("fold bookkeeping wrong: %+v", kf)
	}
	// The validation-protocol ablation: both protocols must report
	// errors of the same magnitude (within 50% of each other).
	ratio := kf.TestMPE / boot.TestMPE
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("k-fold MPE %v vs bootstrap %v: protocols disagree", kf.TestMPE, boot.TestMPE)
	}
	if kf.TrainMPE <= 0 || kf.TestNRMSE <= 0 || kf.TrainNRMSE <= 0 {
		t.Fatalf("k-fold errors: %+v", kf)
	}
}

func TestKFoldErrors(t *testing.T) {
	ds := testDataset(t)
	set, _ := features.SetByName("A")
	spec := Spec{Technique: Linear, FeatureSet: set}
	if _, err := KFold(spec, nil, 5, 1); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := KFold(spec, ds, 1, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := KFold(spec, ds, len(ds.Records)+1, 1); err == nil {
		t.Fatal("k > n accepted")
	}
}

func TestKFoldDeterministic(t *testing.T) {
	ds := testDataset(t)
	set, _ := features.SetByName("B")
	spec := Spec{Technique: Linear, FeatureSet: set}
	a, err := KFold(spec, ds, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KFold(spec, ds, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.TestMPE != b.TestMPE {
		t.Fatal("k-fold not deterministic")
	}
}

func TestKFoldCoversAllRecordsOnce(t *testing.T) {
	// Every record appears in exactly one test fold: verify via fold
	// sizes summing to n with k folds of ±1 equal size.
	ds := testDataset(t)
	set, _ := features.SetByName("A")
	kf, err := KFold(Spec{Technique: Linear, FeatureSet: set}, ds, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(kf.PerFold) != 7 {
		t.Fatalf("got %d folds", len(kf.PerFold))
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	ds := testDataset(t)
	for _, tech := range []Technique{Linear, NeuralNet} {
		set, _ := features.SetByName("F")
		m, err := Train(Spec{Technique: tech, FeatureSet: set, Seed: 9}, ds, ds.Records)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadModel(&buf)
		if err != nil {
			t.Fatal(err)
		}
		// Identical predictions on every record.
		want, err := m.PredictRecords(ds.Records[:20])
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.PredictRecords(ds.Records[:20])
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-9*want[i] {
				t.Fatalf("%v: prediction %d differs: %v vs %v", tech, i, want[i], got[i])
			}
		}
		if loaded.Spec.String() != m.Spec.String() {
			t.Fatalf("spec changed: %s vs %s", loaded.Spec, m.Spec)
		}
	}
}

func TestModelSaveLoadWithInteractions(t *testing.T) {
	ds := testDataset(t)
	set, _ := features.SetByName("C")
	aug := features.WithInteractions(set)
	m, err := Train(Spec{Technique: Linear, FeatureSet: aug}, ds, ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Spec.FeatureSet.Width() != aug.Width() {
		t.Fatal("interactions lost in round trip")
	}
}

func TestModelIOErrors(t *testing.T) {
	var buf bytes.Buffer
	untrained := &Model{Spec: Spec{FeatureSet: features.Sets()[0]}}
	if err := untrained.Save(&buf); err == nil {
		t.Fatal("untrained model saved")
	}
	if _, err := LoadModel(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadModel(strings.NewReader(`{"format":99}`)); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := LoadModel(strings.NewReader(`{"format":1,"technique":0,"feature_set":"A","features":[0],"baselines":{"x":{}}}`)); err == nil {
		t.Fatal("linear model without coefficients accepted")
	}
	if _, err := LoadModel(strings.NewReader(`{"format":1,"technique":1,"feature_set":"A","features":[0],"baselines":{"x":{}}}`)); err == nil {
		t.Fatal("neural model without network accepted")
	}
	if _, err := LoadModel(strings.NewReader(`{"format":1,"technique":0,"feature_set":"A","features":[0],"linear":{"Coefficients":[1],"Constant":0}}`)); err == nil {
		t.Fatal("model without baselines accepted")
	}
}
