package core_test

// Compiled-vs-interpreted equivalence: the property-test harness
// (internal/testeq) sweeps randomly generated models — both techniques,
// hidden widths up to 64, 1–8 P-states, random feature subsets with
// duplicates and out-of-set interaction operands — and asserts every
// predict path agrees bit for bit. These tests live in an external
// package because testeq imports core.

import (
	"testing"

	"colocmodel/internal/core"
	"colocmodel/internal/testeq"
)

// TestCompiledEquivalenceProperty is the acceptance sweep: ≥200 seeded
// random models, each checked bit-for-bit on the scalar, pooled-dispatch
// and batched paths over valid and hostile scenarios.
func TestCompiledEquivalenceProperty(t *testing.T) {
	const models = 220
	gen := testeq.New(0xc010c, testeq.GenConfig{})
	var linear, neural int
	for i := 0; i < models; i++ {
		m, err := gen.Model()
		if err != nil {
			t.Fatalf("model %d: %v", i, err)
		}
		switch m.Spec.Technique {
		case core.Linear:
			linear++
		case core.NeuralNet:
			neural++
		}
		scs := gen.Scenarios(m, 12)
		scs = append(scs, gen.HostileScenarios(m, 6)...)
		testeq.CheckModel(t, m, scs)
	}
	// The generator must actually cover both techniques, or the sweep
	// silently proves half of what it claims.
	if linear < models/4 || neural < models/4 {
		t.Fatalf("generator imbalance: %d linear, %d neural of %d", linear, neural, models)
	}
}

// genModel draws models until one of the wanted technique appears.
func genModel(t *testing.T, gen *testeq.Gen, tech core.Technique) *core.Model {
	t.Helper()
	for i := 0; i < 100; i++ {
		m, err := gen.Model()
		if err != nil {
			t.Fatal(err)
		}
		if m.Spec.Technique == tech {
			return m
		}
	}
	t.Fatalf("no %v model in 100 draws", tech)
	return nil
}

// TestCompiledPredictZeroAllocs pins the compiled fast path's headline
// property: a warmed Compiled instance predicts — scalar and batched —
// with zero heap allocations, for both techniques.
func TestCompiledPredictZeroAllocs(t *testing.T) {
	gen := testeq.New(7, testeq.GenConfig{})
	for _, tech := range []core.Technique{core.Linear, core.NeuralNet} {
		m := genModel(t, gen, tech)
		c, err := m.Compile()
		if err != nil {
			t.Fatal(err)
		}
		scs := gen.Scenarios(m, 64)
		out := make([]float64, len(scs))

		// Warm the scratch (first batch grows the design matrix), then
		// measure.
		if _, err := c.Predict(scs[0]); err != nil {
			t.Fatal(err)
		}
		if err := c.PredictScenarios(scs, out); err != nil {
			t.Fatal(err)
		}

		if n := testing.AllocsPerRun(200, func() {
			if _, err := c.Predict(scs[0]); err != nil {
				t.Error(err)
			}
		}); n != 0 {
			t.Errorf("%v: warm compiled scalar predict allocates %.1f/op, want 0", tech, n)
		}
		if n := testing.AllocsPerRun(50, func() {
			if err := c.PredictScenarios(scs, out); err != nil {
				t.Error(err)
			}
		}); n != 0 {
			t.Errorf("%v: warm compiled batch predict allocates %.1f/op, want 0", tech, n)
		}
	}
}

// TestCompileOnLoad pins compile-on-load: models coming out of both
// trainXY (via testeq's generator, which trains nothing) and LoadModel
// carry a compiled program without any explicit Compile call.
func TestCompileOnLoad(t *testing.T) {
	gen := testeq.New(11, testeq.GenConfig{})
	for i := 0; i < 8; i++ {
		m, err := gen.Model()
		if err != nil {
			t.Fatal(err)
		}
		if !m.IsCompiled() {
			t.Fatalf("model %d (%s) not compiled after LoadModel", i, m.Spec)
		}
	}
}
