package core_test

import (
	"bytes"
	"testing"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/testeq"
)

// FuzzCompileModel drives hostile and mutated artefacts through the full
// load→compile→predict chain. The contract under fuzz: LoadModel either
// rejects the bytes with an error, or yields a model that (a) never
// panics and (b), when it compiled, predicts bit-identically to the
// interpreted path on every scenario — including invalid ones, where the
// two paths must agree on rejecting. A model that loads but does not
// compile is also legal: that is the interpreted fallback working as
// designed (the committed corpus includes a scaler-width-mismatch
// artefact that exercises exactly that branch).
func FuzzCompileModel(f *testing.F) {
	// Seed with real artefacts from the property generator (one per
	// technique) on top of the committed corpus, so mutation starts from
	// deep inside the valid format.
	gen := testeq.New(0xf022, testeq.GenConfig{MaxHidden: 8})
	for i := 0; i < 6; i++ {
		f.Add(gen.Artifact())
	}
	f.Add([]byte("{}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := core.LoadModel(bytes.NewReader(data))
		if err != nil {
			return // rejected: the loader did its job
		}
		if !m.IsCompiled() {
			return // interpreted fallback: legal for shapes that defeat the compiler
		}
		apps := m.Apps()
		if len(apps) == 0 {
			t.Fatal("loaded model has no apps")
		}
		scs := []features.Scenario{
			{Target: apps[0], PState: 0},
			{Target: apps[len(apps)-1], CoApps: []string{apps[0], apps[0]}, PState: m.PStates() - 1},
			{Target: apps[0], CoApps: apps, PState: 0},
			// Hostile: both paths must agree on rejection too.
			{Target: "fuzz-no-such-app", PState: 0},
			{Target: apps[0], CoApps: []string{"fuzz-no-such-app"}, PState: 0},
			{Target: apps[0], PState: m.PStates() + 1},
		}
		testeq.CheckModel(t, m, scs)
	})
}
