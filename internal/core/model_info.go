package core

import (
	"fmt"
	"sort"

	"colocmodel/internal/harness"
)

// Introspection accessors for deployed models. A serving tier must be
// able to validate a request (is the app known? is the P-state in
// range?) *before* running a prediction, so that malformed input can be
// rejected as a client error rather than surfacing as an internal one.
// These methods expose the read-only facts the baseline store already
// holds without exposing the store itself.

// Machine returns the name of the machine the model's baselines were
// measured on.
func (m *Model) Machine() string {
	if m.baselines == nil {
		return ""
	}
	return m.baselines.Machine
}

// Apps returns the sorted names of every application the model has a
// baseline for — the applications it can predict.
func (m *Model) Apps() []string {
	if m.baselines == nil {
		return nil
	}
	out := make([]string, 0, len(m.baselines.Baselines))
	for name := range m.baselines.Baselines {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HasApp reports whether the model has a baseline for the named
// application.
func (m *Model) HasApp(name string) bool {
	if m.baselines == nil {
		return false
	}
	_, ok := m.baselines.Baselines[name]
	return ok
}

// PStates returns the number of P-states the model's baselines cover.
// Valid scenario P-state indices are [0, PStates).
func (m *Model) PStates() int {
	if m.baselines == nil {
		return 0
	}
	return len(m.baselines.PStateFreqs)
}

// Baselines returns the model's baseline store: the dataset of serial
// baseline measurements prediction features are computed from. The
// returned dataset is shared, not copied — callers must treat it as
// read-only. The retraining controller uses it as the feature source
// when no offline training dataset is available (a loaded artefact
// carries baselines but not the original training records).
func (m *Model) Baselines() *harness.Dataset { return m.baselines }

// BaselineSeconds returns the named application's baseline execution
// time at a P-state: the denominator of every slowdown the model
// predicts.
func (m *Model) BaselineSeconds(app string, pstate int) (float64, error) {
	b, err := m.baselines.Baseline(app)
	if err != nil {
		return 0, err
	}
	if pstate < 0 || pstate >= len(b.SecondsByPState) {
		return 0, fmt.Errorf("core: P-state %d missing from %s baseline", pstate, app)
	}
	return b.SecondsByPState[pstate], nil
}
