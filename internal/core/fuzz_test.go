package core

import (
	"bytes"
	"math"
	"testing"

	"colocmodel/internal/features"
)

// FuzzLoadModel drives the artefact decoder with arbitrary bytes.
// Artefacts cross an untrusted boundary — a serving tier loads
// whatever file it is pointed at — so the decoder must never panic,
// and any artefact it does accept must be fully usable: it saves,
// reloads to an equivalent model, and predicts finite values.
//
// The committed corpus under testdata/fuzz/FuzzLoadModel holds a
// valid artefact plus the interesting mutations (truncation, bad
// feature index, non-finite coefficient, wrong format version) and
// runs as a normal test; `go test -fuzz=FuzzLoadModel` explores from
// there and is excluded from CI.
func FuzzLoadModel(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"format":1}`))
	f.Add([]byte(`{"format":2,"technique":0}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := LoadModel(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted artefacts must round-trip...
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("accepted artefact cannot be re-saved: %v", err)
		}
		m2, err := LoadModel(&buf)
		if err != nil {
			t.Fatalf("re-saved artefact rejected: %v", err)
		}
		// ...and predict deterministically finite values for a scenario
		// built from their own baseline store.
		apps := m.Apps()
		if len(apps) == 0 {
			t.Fatal("accepted artefact has no apps")
		}
		sc := features.Scenario{Target: apps[0], CoApps: []string{apps[len(apps)-1]}, PState: 0}
		p1, err1 := m.Predict(sc)
		p2, err2 := m2.Predict(sc)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("round-trip prediction errors diverge: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if math.IsNaN(p1) || math.IsInf(p1, 0) {
			t.Fatalf("accepted artefact predicts non-finite %v", p1)
		}
		if p1 != p2 {
			t.Fatalf("round-trip prediction diverges: %v vs %v", p1, p2)
		}
	})
}
