package core

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"colocmodel/internal/features"
)

func trainedLinearA(t *testing.T) *Model {
	t.Helper()
	ds := testDataset(t)
	set, _ := features.SetByName("A")
	m, err := Train(Spec{Technique: Linear, FeatureSet: set}, ds, ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelIntrospection(t *testing.T) {
	ds := testDataset(t)
	m := trainedLinearA(t)
	if m.Machine() != ds.Machine {
		t.Fatalf("Machine() = %q, want %q", m.Machine(), ds.Machine)
	}
	apps := m.Apps()
	if len(apps) != len(ds.Baselines) {
		t.Fatalf("Apps() has %d entries, want %d", len(apps), len(ds.Baselines))
	}
	if !sort.StringsAreSorted(apps) {
		t.Fatalf("Apps() not sorted: %v", apps)
	}
	for _, a := range apps {
		if !m.HasApp(a) {
			t.Fatalf("HasApp(%q) = false for a listed app", a)
		}
	}
	if m.HasApp("ghost") {
		t.Fatal("HasApp accepted an unknown app")
	}
	if m.PStates() != len(ds.PStateFreqs) {
		t.Fatalf("PStates() = %d, want %d", m.PStates(), len(ds.PStateFreqs))
	}
	sec, err := m.BaselineSeconds(apps[0], 0)
	if err != nil || sec <= 0 {
		t.Fatalf("BaselineSeconds = %v, %v", sec, err)
	}
	if _, err := m.BaselineSeconds(apps[0], 99); err == nil {
		t.Fatal("out-of-range P-state accepted")
	}
	if _, err := m.BaselineSeconds("ghost", 0); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestModelIntrospectionNilBaselines(t *testing.T) {
	m := &Model{}
	if m.Machine() != "" || m.Apps() != nil || m.HasApp("cg") || m.PStates() != 0 {
		t.Fatal("nil-baseline model leaked introspection data")
	}
}

// TestLoadModelHostileInput exercises the untrusted-artefact boundary:
// every corruption must produce a descriptive error, never a model.
func TestLoadModelHostileInput(t *testing.T) {
	m := trainedLinearA(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	t.Run("truncated", func(t *testing.T) {
		for _, frac := range []float64{0.1, 0.5, 0.9} {
			cut := good[:int(frac*float64(len(good)))]
			if _, err := LoadModel(strings.NewReader(cut)); err == nil {
				t.Fatalf("truncated artefact (%.0f%%) accepted", 100*frac)
			}
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := LoadModel(strings.NewReader("")); err == nil {
			t.Fatal("empty artefact accepted")
		}
	})
	t.Run("future-format", func(t *testing.T) {
		bad := strings.Replace(good, `"format":1`, `"format":2`, 1)
		_, err := LoadModel(strings.NewReader(bad))
		if err == nil || !strings.Contains(err.Error(), "format") {
			t.Fatalf("future format: err = %v", err)
		}
	})
	t.Run("empty-feature-set", func(t *testing.T) {
		bad := strings.Replace(good, `"features":[0]`, `"features":[]`, 1)
		if _, err := LoadModel(strings.NewReader(bad)); err == nil {
			t.Fatal("empty feature set accepted")
		}
	})
	t.Run("unknown-feature-index", func(t *testing.T) {
		bad := strings.Replace(good, `"features":[0]`, `"features":[99]`, 1)
		_, err := LoadModel(strings.NewReader(bad))
		if err == nil || !strings.Contains(err.Error(), "feature") {
			t.Fatalf("unknown feature index: err = %v", err)
		}
	})
	t.Run("negative-feature-index", func(t *testing.T) {
		bad := strings.Replace(good, `"features":[0]`, `"features":[-1]`, 1)
		if _, err := LoadModel(strings.NewReader(bad)); err == nil {
			t.Fatal("negative feature index accepted")
		}
	})
	t.Run("bad-interaction", func(t *testing.T) {
		bad := strings.Replace(good, `"features":[0]`, `"features":[0],"interactions":[[0,99]]`, 1)
		if _, err := LoadModel(strings.NewReader(bad)); err == nil {
			t.Fatal("out-of-range interaction feature accepted")
		}
	})
	t.Run("unknown-technique", func(t *testing.T) {
		bad := strings.Replace(good, `"technique":0`, `"technique":7`, 1)
		if _, err := LoadModel(strings.NewReader(bad)); err == nil {
			t.Fatal("unknown technique accepted")
		}
	})
}

func TestLoadModelInconsistentBaselines(t *testing.T) {
	base := `{"format":1,"technique":0,"feature_set":"A","features":[0],` +
		`"linear":{"Coefficients":[1],"Constant":0},` +
		`"machine":"m","pstate_freqs":[2.5,2.0],%s}`
	cases := map[string]string{
		"missing pstates":  `"baselines":{"x":{"App":"x","SecondsByPState":[10],"MemIntensity":1e-3,"CMPerCA":0.5,"CAPerIns":0.01}}`,
		"negative seconds": `"baselines":{"x":{"App":"x","SecondsByPState":[10,-1],"MemIntensity":1e-3,"CMPerCA":0.5,"CAPerIns":0.01}}`,
		"zero seconds":     `"baselines":{"x":{"App":"x","SecondsByPState":[0,10],"MemIntensity":1e-3,"CMPerCA":0.5,"CAPerIns":0.01}}`,
	}
	for name, blob := range cases {
		if _, err := LoadModel(strings.NewReader(fmt.Sprintf(base, blob))); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	// The same shape with consistent baselines must load.
	ok := `"baselines":{"x":{"App":"x","SecondsByPState":[10,12],"MemIntensity":1e-3,"CMPerCA":0.5,"CAPerIns":0.01}}`
	if _, err := LoadModel(strings.NewReader(fmt.Sprintf(base, ok))); err != nil {
		t.Fatalf("consistent artefact rejected: %v", err)
	}
}

func TestLoadModelNoPStateTable(t *testing.T) {
	blob := `{"format":1,"technique":0,"feature_set":"A","features":[0],` +
		`"linear":{"Coefficients":[1],"Constant":0},"machine":"m","pstate_freqs":[],` +
		`"baselines":{"x":{"App":"x","SecondsByPState":[],"MemIntensity":1e-3,"CMPerCA":0.5,"CAPerIns":0.01}}}`
	if _, err := LoadModel(strings.NewReader(blob)); err == nil {
		t.Fatal("artefact without a P-state table accepted")
	}
}
