// Package core implements the paper's primary contribution: the
// methodology for building co-location aware performance models.
//
// A model is a (technique × feature set) pair — Section V evaluates twelve
// of them: linear regression (Section III-C) and a scaled-conjugate-
// gradient neural network (Section III-D), each over the six Table II
// feature sets A–F. A trained model predicts the execution time a target
// application will have when co-located with a given set of applications
// at a given P-state, using only the target's and co-runners' baseline
// measurements.
//
// Evaluation follows Section IV-B4: repeated random sub-sampling with 30 %
// of records withheld per partition, one hundred partitions, errors
// averaged across partitions and reported as MPE (Eq. 2) and NRMSE
// (Eq. 3). Partitions are independent, so Evaluate trains them in
// parallel across the available cores.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"colocmodel/internal/features"
	"colocmodel/internal/harness"
	"colocmodel/internal/linalg"
	"colocmodel/internal/linreg"
	"colocmodel/internal/mlp"
	"colocmodel/internal/stats"
	"colocmodel/internal/xrand"
)

// Technique is a modeling technique from Section III.
type Technique int

const (
	// Linear is least-squares linear regression (Eq. 1).
	Linear Technique = iota
	// NeuralNet is the feed-forward network trained with scaled
	// conjugate gradient.
	NeuralNet
)

// String names the technique.
func (t Technique) String() string {
	switch t {
	case Linear:
		return "linear"
	case NeuralNet:
		return "neural-net"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// Spec identifies one of the twelve models.
type Spec struct {
	// Technique selects linear or neural-network modeling.
	Technique Technique
	// FeatureSet is the Table II feature group.
	FeatureSet features.Set
	// HiddenNodes sets the network width; 0 selects the paper's
	// default of 10–20 nodes scaled with the feature-set size.
	HiddenNodes int
	// Seed drives weight initialisation (neural models).
	Seed uint64
	// SCG optionally overrides the trainer configuration.
	SCG mlp.SCGConfig
}

// String renders e.g. "linear-A" or "neural-net-F".
func (s Spec) String() string {
	return fmt.Sprintf("%s-%s", s.Technique, s.FeatureSet.Name)
}

// defaultHiddenNodes maps feature-set size to the paper's 10–20 node
// range: the smallest sets get ten nodes, the full set gets twenty.
func defaultHiddenNodes(setSize int) int {
	switch {
	case setSize <= 1:
		return 10
	case setSize == 2:
		return 12
	case setSize == 3:
		return 14
	case setSize == 4:
		return 15
	case setSize <= 6:
		return 18
	default:
		return 20
	}
}

// AllSpecs returns the twelve Section V models: both techniques over the
// six feature sets, linear first, sets in A–F order.
func AllSpecs(seed uint64) []Spec {
	var out []Spec
	for _, tech := range []Technique{Linear, NeuralNet} {
		for _, set := range features.Sets() {
			out = append(out, Spec{Technique: tech, FeatureSet: set, Seed: seed})
		}
	}
	return out
}

// Model is a trained co-location performance predictor.
type Model struct {
	// Spec is the model's identity.
	Spec Spec

	baselines *harness.Dataset // baseline store for feature computation
	lin       *linreg.Model
	net       *mlp.Network
	xScaler   *features.Scaler
	yScaler   *features.VecScaler

	// prog is the model compiled into a fused predict program at
	// train/load time (see compile.go); cpool recycles per-worker
	// Compiled instances so Predict stays goroutine-safe while running
	// the compiled fast path. nil prog means interpreted-only.
	prog  *program
	cpool sync.Pool
}

// TrainScratch carries the reusable per-worker state for repeated model
// training: the linear fitter's augmented matrix + QR scratch and the
// neural trainer's batched forward/backward workspace. Buffers grow on
// first use and are reused by every subsequent fit, so a warmed scratch
// makes repeated training (bootstrap partitions, retrain attempts) nearly
// allocation-free outside the returned models.
//
// Reuse contract: a TrainScratch is NOT goroutine-safe. Keep exactly one
// per worker goroutine, as Evaluate does.
type TrainScratch struct {
	fitter linreg.Fitter
	ws     *mlp.Workspace
}

// NewTrainScratch returns a scratch with the neural workspace eagerly
// allocated. The zero value also works; its buffers appear on first use.
func NewTrainScratch() *TrainScratch {
	return &TrainScratch{ws: mlp.NewWorkspace()}
}

func (s *TrainScratch) workspace() *mlp.Workspace {
	if s.ws == nil {
		s.ws = mlp.NewWorkspace()
	}
	return s.ws
}

// Train fits one model on the given records. The dataset supplies
// baselines for feature extraction; records are the (sub)set of
// co-location measurements to fit on. Each call uses a private scratch;
// callers training many models should hold a TrainScratch and use
// TrainWithScratch.
func Train(spec Spec, ds *harness.Dataset, records []harness.Record) (*Model, error) {
	return TrainWithScratch(spec, ds, records, nil)
}

// TrainWithScratch is Train with an explicit reusable scratch (nil for a
// fresh private one).
func TrainWithScratch(spec Spec, ds *harness.Dataset, records []harness.Record, scratch *TrainScratch) (*Model, error) {
	if ds == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	if len(spec.FeatureSet.Features) == 0 {
		return nil, fmt.Errorf("core: spec %q has an empty feature set", spec)
	}
	x, y, err := features.Matrix(spec.FeatureSet, ds, records)
	if err != nil {
		return nil, err
	}
	return trainXY(spec, ds, x, y, scratch)
}

// TrainScenarios fits a model on explicit (possibly heterogeneous)
// scenarios with measured execution times: the training path used by the
// mixed-training extension, where co-runner sets are not homogeneous and
// therefore cannot be expressed as harness Records.
func TrainScenarios(spec Spec, ds *harness.Dataset, scs []features.Scenario, seconds []float64) (*Model, error) {
	return TrainScenariosScratch(spec, ds, scs, seconds, nil)
}

// TrainScenariosScratch is TrainScenarios with an explicit reusable
// scratch (nil for a fresh private one).
func TrainScenariosScratch(spec Spec, ds *harness.Dataset, scs []features.Scenario, seconds []float64, scratch *TrainScratch) (*Model, error) {
	if ds == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	if len(spec.FeatureSet.Features) == 0 {
		return nil, fmt.Errorf("core: spec %q has an empty feature set", spec)
	}
	x, y, err := features.MatrixScenarios(spec.FeatureSet, ds, scs, seconds)
	if err != nil {
		return nil, err
	}
	return trainXY(spec, ds, x, y, scratch)
}

// trainXY fits the spec's technique on a prepared design matrix, reusing
// the scratch's fitter and workspace buffers.
func trainXY(spec Spec, ds *harness.Dataset, x *linalg.Matrix, y []float64, scratch *TrainScratch) (*Model, error) {
	if scratch == nil {
		scratch = &TrainScratch{}
	}
	var err error
	m := &Model{Spec: spec, baselines: ds}
	switch spec.Technique {
	case Linear:
		m.lin, err = scratch.fitter.Fit(x, y)
		if err != nil {
			return nil, fmt.Errorf("core: fitting %s: %w", spec, err)
		}
	case NeuralNet:
		hidden := spec.HiddenNodes
		if hidden == 0 {
			hidden = defaultHiddenNodes(len(spec.FeatureSet.Features))
		}
		m.xScaler = features.FitScaler(x)
		m.yScaler = features.FitVecScaler(y)
		xs, err := m.xScaler.Transform(x)
		if err != nil {
			return nil, err
		}
		ys := m.yScaler.Transform(y)
		net, err := mlp.New(mlp.Config{
			Inputs:     x.Cols,
			Hidden:     []int{hidden},
			Activation: mlp.Tanh,
			Seed:       spec.Seed,
		})
		if err != nil {
			return nil, err
		}
		cfg := spec.SCG
		if cfg.MaxIter == 0 {
			cfg.MaxIter = 400
		}
		if _, err := mlp.TrainSCGWS(net, xs, ys, cfg, scratch.workspace()); err != nil {
			return nil, fmt.Errorf("core: training %s: %w", spec, err)
		}
		m.net = net
	default:
		return nil, fmt.Errorf("core: unknown technique %d", int(spec.Technique))
	}
	m.initCompiled()
	return m, nil
}

// Predict estimates the target's co-located execution time for a
// schedule-time scenario, using only baseline measurements. Models carry
// a compiled fast path (built at train/load time) that this dispatches
// through; results are bit-identical to PredictInterpreted, which remains
// the reference implementation.
func (m *Model) Predict(sc features.Scenario) (float64, error) {
	if c := m.compiled(); c != nil {
		v, err := c.Predict(sc)
		m.cpool.Put(c)
		return v, err
	}
	return m.PredictInterpreted(sc)
}

// PredictInterpreted is the uncompiled reference predict path: the
// feature pipeline walked per call and the technique dispatched
// generically. The compiled path is property-tested bit-for-bit against
// it (internal/testeq), and models whose artefacts defeat the compiler
// fall back to it transparently.
func (m *Model) PredictInterpreted(sc features.Scenario) (float64, error) {
	v, err := features.Vector(m.Spec.FeatureSet, m.baselines, sc)
	if err != nil {
		return 0, err
	}
	return m.predictVector(v)
}

func (m *Model) predictVector(v []float64) (float64, error) {
	switch {
	case m.lin != nil:
		return m.lin.Predict(v)
	case m.net != nil:
		xs, err := m.xScaler.TransformVec(v)
		if err != nil {
			return 0, err
		}
		ys, err := m.net.Forward(xs)
		if err != nil {
			return 0, err
		}
		return m.yScaler.Inverse(ys), nil
	default:
		return 0, fmt.Errorf("core: model %s not trained", m.Spec)
	}
}

// PredictRecords predicts the execution time of each record's scenario in
// one batched pass: the design matrix is built once and the model is
// evaluated with a single batched kernel call per layer instead of one
// forward per record. Results are bit-identical to per-record Predict.
func (m *Model) PredictRecords(records []harness.Record) ([]float64, error) {
	if len(records) == 0 {
		return []float64{}, nil
	}
	x, _, err := features.Matrix(m.Spec.FeatureSet, m.baselines, records)
	if err != nil {
		return nil, err
	}
	return m.predictMatrix(x)
}

// PredictScenarios predicts every scenario in one batched pass, the
// many-scenario counterpart of Predict (bit-identical to calling it per
// scenario). Compiled models evaluate the batch through the blocked
// compiled kernels; the result is bit-identical to
// PredictScenariosInterpreted.
func (m *Model) PredictScenarios(scs []features.Scenario) ([]float64, error) {
	if len(scs) == 0 {
		return []float64{}, nil
	}
	if c := m.compiled(); c != nil {
		out := make([]float64, len(scs))
		err := c.PredictScenarios(scs, out)
		m.cpool.Put(c)
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	return m.PredictScenariosInterpreted(scs)
}

// PredictScenariosInterpreted is the uncompiled reference batch path:
// design matrix built by the generic feature pipeline, technique
// evaluated by the generic batched kernels. The compiled batch path is
// property-tested bit-for-bit against it.
func (m *Model) PredictScenariosInterpreted(scs []features.Scenario) ([]float64, error) {
	if len(scs) == 0 {
		return []float64{}, nil
	}
	labels := make([]float64, len(scs))
	x, _, err := features.MatrixScenarios(m.Spec.FeatureSet, m.baselines, scs, labels)
	if err != nil {
		return nil, err
	}
	return m.predictMatrix(x)
}

// predictMatrix evaluates the fitted technique over a prepared design
// matrix. Per row the arithmetic order matches predictVector exactly: the
// linear sum starts at the constant and adds terms in feature order, and
// the network's batched forward accumulates each node bit-identically to
// Forward.
func (m *Model) predictMatrix(x *linalg.Matrix) ([]float64, error) {
	switch {
	case m.lin != nil:
		out := make([]float64, x.Rows)
		if err := m.lin.PredictBatchInto(x, out); err != nil {
			return nil, err
		}
		return out, nil
	case m.net != nil:
		xs, err := m.xScaler.Transform(x)
		if err != nil {
			return nil, err
		}
		out, err := m.net.PredictBatch(xs)
		if err != nil {
			return nil, err
		}
		for i, v := range out {
			out[i] = m.yScaler.Inverse(v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("core: model %s not trained", m.Spec)
	}
}

// PredictedSlowdown returns the predicted execution time divided by the
// target's baseline at the scenario's P-state: the normalised execution
// time of Table VI.
func (m *Model) PredictedSlowdown(sc features.Scenario) (float64, error) {
	pred, err := m.Predict(sc)
	if err != nil {
		return 0, err
	}
	b, err := m.baselines.Baseline(sc.Target)
	if err != nil {
		return 0, err
	}
	if sc.PState < 0 || sc.PState >= len(b.SecondsByPState) {
		return 0, fmt.Errorf("core: P-state %d missing from %s baseline", sc.PState, sc.Target)
	}
	return pred / b.SecondsByPState[sc.PState], nil
}

// Errors computes MPE and NRMSE of the model on the given records.
func (m *Model) Errors(records []harness.Record) (mpe, nrmse float64, err error) {
	pred, err := m.PredictRecords(records)
	if err != nil {
		return 0, 0, err
	}
	actual := make([]float64, len(records))
	for i, r := range records {
		actual[i] = r.Seconds
	}
	mpe, err = stats.MPE(pred, actual)
	if err != nil {
		return 0, 0, err
	}
	nrmse, err = stats.NRMSE(pred, actual)
	if err != nil {
		return 0, 0, err
	}
	return mpe, nrmse, nil
}

// PartitionErrors is one partition's train/test accuracy.
type PartitionErrors struct {
	TrainMPE, TestMPE     float64
	TrainNRMSE, TestNRMSE float64
}

// EvalConfig tunes the repeated random sub-sampling protocol.
type EvalConfig struct {
	// Partitions is the number of random splits (paper: 100).
	Partitions int
	// TestFraction is the withheld share (paper: 0.30).
	TestFraction float64
	// Seed drives the partition sampling and per-partition model seeds.
	Seed uint64
	// Workers bounds parallel partition training; 0 = GOMAXPROCS.
	Workers int
}

func (c *EvalConfig) defaults() {
	if c.Partitions == 0 {
		c.Partitions = 100
	}
	if c.TestFraction == 0 {
		c.TestFraction = 0.30
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// EvalResult aggregates a model's accuracy across partitions.
type EvalResult struct {
	// Spec identifies the model.
	Spec Spec
	// Mean errors across partitions (the data points of Figures 1–4).
	TrainMPE, TestMPE     float64
	TrainNRMSE, TestNRMSE float64
	// CI95 half-widths of the mean test errors; the paper observes these
	// are tight ("at most a quarter of a percent").
	TestMPECI, TestNRMSECI float64
	// PerPartition holds the raw per-partition errors.
	PerPartition []PartitionErrors
}

// Evaluate runs the full Section IV-B4 protocol for one model spec:
// repeatedly withhold 30 % of the records, train on the rest, measure both
// sides, and average. Partitions train concurrently.
func Evaluate(spec Spec, ds *harness.Dataset, cfg EvalConfig) (*EvalResult, error) {
	cfg.defaults()
	if len(ds.Records) < 10 {
		return nil, fmt.Errorf("core: only %d records; need at least 10", len(ds.Records))
	}
	part, err := stats.NewPartitioner(len(ds.Records), cfg.TestFraction, xrand.New(cfg.Seed))
	if err != nil {
		return nil, err
	}
	parts := part.Partitions(cfg.Partitions)

	// Derive every partition's model seed up front rather than inside the
	// worker closures; the derivation depends only on the partition index.
	seeds := make([]uint64, len(parts))
	for pi := range seeds {
		seeds[pi] = cfg.Seed + uint64(pi)
	}

	res := &EvalResult{Spec: spec, PerPartition: make([]PartitionErrors, cfg.Partitions)}
	workers := min(cfg.Workers, len(parts))
	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
		idx      = make(chan int)
	)
	// A fixed worker pool rather than a semaphore-gated goroutine per
	// partition: each worker owns one TrainScratch whose fitter and
	// neural-net workspace buffers warm up on the first partition and are
	// reused by every later one it draws.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := NewTrainScratch()
			for pi := range idx {
				pe, err := evaluatePartition(spec, ds, parts[pi], seeds[pi], scratch)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					continue
				}
				res.PerPartition[pi] = pe
			}
		}()
	}
	for pi := range parts {
		idx <- pi
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	n := len(res.PerPartition)
	trainMPEs := make([]float64, n)
	testMPEs := make([]float64, n)
	trainNRMSEs := make([]float64, n)
	testNRMSEs := make([]float64, n)
	for i, pe := range res.PerPartition {
		trainMPEs[i] = pe.TrainMPE
		testMPEs[i] = pe.TestMPE
		trainNRMSEs[i] = pe.TrainNRMSE
		testNRMSEs[i] = pe.TestNRMSE
	}
	res.TrainMPE = stats.Mean(trainMPEs)
	res.TrainNRMSE = stats.Mean(trainNRMSEs)
	res.TestMPE, res.TestMPECI = stats.MeanCI(testMPEs)
	res.TestNRMSE, res.TestNRMSECI = stats.MeanCI(testNRMSEs)
	return res, nil
}

// evaluatePartition trains on the partition's training split and measures
// both splits, reusing the worker's scratch.
func evaluatePartition(spec Spec, ds *harness.Dataset, p stats.Partition, seed uint64, scratch *TrainScratch) (PartitionErrors, error) {
	spec.Seed = seed
	train := selectRecords(ds.Records, p.Train)
	test := selectRecords(ds.Records, p.Test)
	m, err := TrainWithScratch(spec, ds, train, scratch)
	if err != nil {
		return PartitionErrors{}, err
	}
	var pe PartitionErrors
	if pe.TrainMPE, pe.TrainNRMSE, err = m.Errors(train); err != nil {
		return PartitionErrors{}, err
	}
	if pe.TestMPE, pe.TestNRMSE, err = m.Errors(test); err != nil {
		return PartitionErrors{}, err
	}
	return pe, nil
}

func selectRecords(rs []harness.Record, idx []int) []harness.Record {
	out := make([]harness.Record, len(idx))
	for i, j := range idx {
		out[i] = rs[j]
	}
	return out
}

// EvaluateAll evaluates all twelve Section V models on a dataset,
// returning results in AllSpecs order (linear A–F, then neural A–F).
func EvaluateAll(ds *harness.Dataset, cfg EvalConfig) ([]*EvalResult, error) {
	specs := AllSpecs(cfg.Seed)
	out := make([]*EvalResult, len(specs))
	for i, s := range specs {
		r, err := Evaluate(s, ds, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: evaluating %s: %w", s, err)
		}
		out[i] = r
	}
	return out, nil
}
