package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"colocmodel/internal/features"
	"colocmodel/internal/harness"
	"colocmodel/internal/linreg"
	"colocmodel/internal/mlp"
)

// A trained model is a deployable artefact: a resource manager trains
// once per machine type and then loads the model wherever scheduling
// decisions are made. Save/LoadModel serialise everything prediction
// needs — the spec, the fitted parameters, the scalers, and the baseline
// store (the model's only data dependency at predict time) — as JSON.

// modelDTO is the serialised form.
type modelDTO struct {
	Format    int                 `json:"format"`
	Technique int                 `json:"technique"`
	SetName   string              `json:"feature_set"`
	Features  []int               `json:"features"`
	Pairs     [][2]int            `json:"interactions,omitempty"`
	Hidden    int                 `json:"hidden_nodes,omitempty"`
	Seed      uint64              `json:"seed"`
	Linear    *linreg.Model       `json:"linear,omitempty"`
	NetConfig *mlp.Config         `json:"net_config,omitempty"`
	NetParams []float64           `json:"net_params,omitempty"`
	XScaler   *features.Scaler    `json:"x_scaler,omitempty"`
	YScaler   *features.VecScaler `json:"y_scaler,omitempty"`

	Machine     string                      `json:"machine"`
	PStateFreqs []float64                   `json:"pstate_freqs"`
	LLCBytes    float64                     `json:"llc_bytes"`
	Baselines   map[string]harness.Baseline `json:"baselines"`
}

// currentModelFormat versions the serialisation.
const currentModelFormat = 1

// ModelFormat reports the artefact format version this build reads and
// writes (surfaced by the serving tier's version endpoint).
func ModelFormat() int { return currentModelFormat }

// Save writes the trained model to w as JSON.
func (m *Model) Save(w io.Writer) error {
	if m.lin == nil && m.net == nil {
		return fmt.Errorf("core: cannot save an untrained model")
	}
	if m.baselines == nil {
		return fmt.Errorf("core: model has no baseline store")
	}
	dto := modelDTO{
		Format:    currentModelFormat,
		Technique: int(m.Spec.Technique),
		SetName:   m.Spec.FeatureSet.Name,
		Hidden:    m.Spec.HiddenNodes,
		Seed:      m.Spec.Seed,
		Linear:    m.lin,
		XScaler:   m.xScaler,
		YScaler:   m.yScaler,

		Machine:     m.baselines.Machine,
		PStateFreqs: m.baselines.PStateFreqs,
		LLCBytes:    m.baselines.LLCBytes,
		Baselines:   m.baselines.Baselines,
	}
	for _, f := range m.Spec.FeatureSet.Features {
		dto.Features = append(dto.Features, int(f))
	}
	for _, p := range m.Spec.FeatureSet.Interactions {
		dto.Pairs = append(dto.Pairs, [2]int{int(p[0]), int(p[1])})
	}
	if m.net != nil {
		cfg := m.net.Config()
		dto.NetConfig = &cfg
		dto.NetParams = m.net.Params()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(dto)
}

// LoadModel reads a model previously written by Save. Artefacts cross an
// untrusted boundary (a serving tier loads whatever file it is pointed
// at), so the decoder rejects unknown format versions, truncated or
// corrupt JSON, out-of-range feature indices, non-finite parameters, and
// inconsistent baseline stores with descriptive errors instead of
// producing a model that fails (or worse, mispredicts) later.
func LoadModel(r io.Reader) (*Model, error) {
	dec := json.NewDecoder(r)
	var dto modelDTO
	if err := dec.Decode(&dto); err != nil {
		return nil, fmt.Errorf("core: decoding model (truncated or corrupt artefact?): %w", err)
	}
	if dto.Format != currentModelFormat {
		return nil, fmt.Errorf("core: unsupported model format %d (this build reads format %d)",
			dto.Format, currentModelFormat)
	}
	if len(dto.Features) == 0 {
		return nil, fmt.Errorf("core: model has an empty feature set")
	}
	set := features.Set{Name: dto.SetName}
	for _, f := range dto.Features {
		if !features.Feature(f).Valid() {
			return nil, fmt.Errorf("core: model references unknown feature index %d", f)
		}
		set.Features = append(set.Features, features.Feature(f))
	}
	for _, p := range dto.Pairs {
		if !features.Feature(p[0]).Valid() || !features.Feature(p[1]).Valid() {
			return nil, fmt.Errorf("core: model references unknown interaction feature in %v", p)
		}
		set.Interactions = append(set.Interactions, [2]features.Feature{features.Feature(p[0]), features.Feature(p[1])})
	}
	m := &Model{
		Spec: Spec{
			Technique:   Technique(dto.Technique),
			FeatureSet:  set,
			HiddenNodes: dto.Hidden,
			Seed:        dto.Seed,
		},
		baselines: &harness.Dataset{
			Machine:     dto.Machine,
			PStateFreqs: dto.PStateFreqs,
			LLCBytes:    dto.LLCBytes,
			Baselines:   dto.Baselines,
		},
	}
	if len(m.baselines.Baselines) == 0 {
		return nil, fmt.Errorf("core: model has no baselines")
	}
	if len(dto.PStateFreqs) == 0 {
		return nil, fmt.Errorf("core: model has no P-state table")
	}
	for name, b := range m.baselines.Baselines {
		if len(b.SecondsByPState) != len(dto.PStateFreqs) {
			return nil, fmt.Errorf("core: baseline %q covers %d P-states; machine has %d",
				name, len(b.SecondsByPState), len(dto.PStateFreqs))
		}
		for ps, sec := range b.SecondsByPState {
			if !finite(sec) || sec <= 0 {
				return nil, fmt.Errorf("core: baseline %q has invalid time %v at P%d", name, sec, ps)
			}
		}
	}
	switch m.Spec.Technique {
	case Linear:
		if dto.Linear == nil {
			return nil, fmt.Errorf("core: linear model missing coefficients")
		}
		if len(dto.Linear.Coefficients) != set.Width() {
			return nil, fmt.Errorf("core: linear model has %d coefficients for %d features",
				len(dto.Linear.Coefficients), set.Width())
		}
		if !allFinite(dto.Linear.Coefficients) || !finite(dto.Linear.Constant) {
			return nil, fmt.Errorf("core: linear model has non-finite coefficients")
		}
		m.lin = dto.Linear
	case NeuralNet:
		if dto.NetConfig == nil || dto.NetParams == nil || dto.XScaler == nil || dto.YScaler == nil {
			return nil, fmt.Errorf("core: neural model missing network or scalers")
		}
		if !allFinite(dto.NetParams) {
			return nil, fmt.Errorf("core: neural model has non-finite parameters")
		}
		net, err := mlp.New(*dto.NetConfig)
		if err != nil {
			return nil, err
		}
		if err := net.SetParams(dto.NetParams); err != nil {
			return nil, err
		}
		if net.Config().Inputs != set.Width() {
			return nil, fmt.Errorf("core: network expects %d inputs for %d features",
				net.Config().Inputs, set.Width())
		}
		m.net = net
		m.xScaler = dto.XScaler
		m.yScaler = dto.YScaler
	default:
		return nil, fmt.Errorf("core: unknown technique %d", dto.Technique)
	}
	// Specialise the loaded model into its compiled predict program
	// (compile-on-load). An artefact consistent enough to pass the checks
	// above always compiles; if a shape nonetheless defeats the compiler
	// the model stays on the interpreted path rather than failing the
	// load.
	m.initCompiled()
	return m, nil
}

// finite reports whether v is neither NaN nor ±Inf.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func allFinite(vs []float64) bool {
	for _, v := range vs {
		if !finite(v) {
			return false
		}
	}
	return true
}
