package core_test

// BenchmarkPredictPath measures every rung of the inference fast path
// against the interpreted reference on one production-shaped model
// (8 base features, one hidden layer of 20 tanh nodes — the neural-net-F
// shape): cold (compile per op), warm scalar, the pooled Model.Predict
// dispatch, batched at the loadgen sizes, and parallel dispatch. The
// colotrain -bench-train command records the same cases into the
// BENCH_train.json trajectory.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/xrand"
)

// benchArtifact builds a deterministic neural-net artefact with the
// production serving shape, without the cost of training: 6 apps,
// 6 P-states, the 8 Table I features, one hidden layer of 20 nodes.
func benchArtifact() []byte {
	src := xrand.New(99)
	const apps, pstates, width, hidden = 6, 6, 8, 20
	baselines := make(map[string]any, apps)
	for a := 0; a < apps; a++ {
		secs := make([]float64, pstates)
		for p := range secs {
			secs[p] = 100 + 20*float64(p) + src.Uniform(0, 50)
		}
		baselines[fmt.Sprintf("app%d", a)] = map[string]any{
			"App": fmt.Sprintf("app%d", a), "SecondsByPState": secs,
			"MemIntensity": src.Uniform(0, 1e-3), "CMPerCA": src.Float64(), "CAPerIns": src.Uniform(0, 0.1),
		}
	}
	freqs := make([]float64, pstates)
	for p := range freqs {
		freqs[p] = 2.5 - 0.15*float64(p)
	}
	params := make([]float64, width*hidden+hidden+hidden+1)
	for i := range params {
		params[i] = src.Normal(0, 0.5)
	}
	mean := make([]float64, width)
	std := make([]float64, width)
	for j := range mean {
		mean[j] = src.Uniform(0, 10)
		std[j] = src.Uniform(0.5, 5)
	}
	dto := map[string]any{
		"format": 1, "technique": 1, "feature_set": "bench",
		"features": []int{0, 1, 2, 3, 4, 5, 6, 7}, "seed": 99,
		"machine": "bench-machine", "pstate_freqs": freqs, "llc_bytes": 12e6,
		"baselines":  baselines,
		"net_config": map[string]any{"Inputs": width, "Hidden": []int{hidden}, "Activation": 0, "Seed": 1},
		"net_params": params,
		"x_scaler":   map[string]any{"Mean": mean, "Std": std},
		"y_scaler":   map[string]any{"Mean": 150.0, "Std": 40.0},
	}
	raw, err := json.Marshal(dto)
	if err != nil {
		panic(err)
	}
	return raw
}

// benchScenarios draws a deterministic scenario pool over the model's
// apps and P-states.
func benchScenarios(m *core.Model, n int) []features.Scenario {
	src := xrand.New(7)
	apps := m.Apps()
	out := make([]features.Scenario, n)
	for i := range out {
		co := make([]string, src.Intn(6))
		for j := range co {
			co[j] = apps[src.Intn(len(apps))]
		}
		out[i] = features.Scenario{
			Target: apps[src.Intn(len(apps))],
			CoApps: co,
			PState: src.Intn(m.PStates()),
		}
	}
	return out
}

func BenchmarkPredictPath(b *testing.B) {
	m, err := core.LoadModel(bytes.NewReader(benchArtifact()))
	if err != nil {
		b.Fatal(err)
	}
	if !m.IsCompiled() {
		b.Fatal("bench model did not compile")
	}
	pool := benchScenarios(m, 4096)
	sc := pool[0]

	b.Run("scalar/interpreted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.PredictInterpreted(sc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scalar/compiled-cold", func(b *testing.B) {
		// Cold: pay compilation (program is shared, instance scratch is
		// not) plus one predict per op — the promotion-time cost.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, err := m.Compile()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.Predict(sc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scalar/compiled-warm", func(b *testing.B) {
		c, err := m.Compile()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Predict(sc); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Predict(sc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scalar/dispatch", func(b *testing.B) {
		// The goroutine-safe entry point: pool checkout + compiled predict.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.Predict(sc); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []int{64, 512, 4096} {
		scs := pool[:n]
		b.Run(fmt.Sprintf("batch%d/interpreted", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.PredictScenariosInterpreted(scs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("batch%d/compiled", n), func(b *testing.B) {
			c, err := m.Compile()
			if err != nil {
				b.Fatal(err)
			}
			out := make([]float64, n)
			if err := c.PredictScenarios(scs, out); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.PredictScenarios(scs, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("parallel/dispatch", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := m.Predict(pool[i%len(pool)]); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
}
