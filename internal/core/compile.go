package core

import (
	"fmt"
	"math"

	"colocmodel/internal/features"
	"colocmodel/internal/linalg"
	"colocmodel/internal/mlp"
)

// The model compiler. The predict path is the product's hot loop: every
// serving, placement and retraining tier funnels through Predict /
// PredictScenarios, and the paper's value proposition — cheap what-if
// prediction replacing measurement — only holds while that loop is cheap.
// The interpreted path walks the feature Set, hashes baseline names into
// a map per feature, allocates a vector per scenario and dispatches
// through the generic technique switch; compileProgram instead specialises
// a trained model once, at promotion/load time, into a fused program:
//
//   - the feature pipeline is flattened into a fixed op table whose
//     operands are pre-resolved indices into a baked per-app fact table
//     (one baseline map lookup per *name*, at compile time, not per
//     predict);
//   - a linear model folds to a single dot product over that vector;
//   - a neural model's standardise → layers → de-standardise chain runs
//     over preallocated fixed-width scratch with the activation resolved
//     at compile time, so the scalar path performs zero heap allocations
//     and no interface or switch dispatch per node;
//   - the batched path fills a reusable design matrix and evaluates one
//     blocked kernel per layer (linalg.AccumMulABT8 / GemvBiasInto).
//
// Reproducibility contract: every compiled evaluation applies exactly the
// floating-point operations of the interpreted path in exactly the same
// order, so compiled results are bit-for-bit identical to interpreted
// ones — scalar, batched, and PredictScenarios alike. The property-test
// harness (internal/testeq) proves this over randomly generated models;
// do not change accumulation order here without extending it.

// featOpKind is the opcode of one compiled feature column.
type featOpKind uint8

const (
	opBaseExTime featOpKind = iota // target baseline seconds at scenario P-state
	opNumCoApp                     // float64(len(CoApps))
	opTargetStat                   // one baked per-app stat of the target
	opCoSumStat                    // sum of one baked stat over the co-apps
	opProduct                      // product of two previously evaluated operands
)

// appStat indexes the baked per-app stats (appFacts.stats).
type appStat uint8

const (
	statMem appStat = iota
	statCMCA
	statCAINS
	numAppStats
)

// featOp is one column of the compiled feature pipeline. For opProduct,
// a and b index the two operand slots in the op table's prefix (operands
// are compiled ahead of the product, mirroring how the interpreted path
// computes interaction terms from the same Value calls).
type featOp struct {
	kind featOpKind
	stat appStat
	a, b int
}

// appFacts is the baked baseline of one application: everything the
// feature pipeline can ask about it, resolved from the baseline store
// once at compile time.
type appFacts struct {
	secondsByPState []float64
	stats           [numAppStats]float64
}

// program is the immutable, shareable half of a compiled model: the op
// table, the baked fact table, and the technique's folded parameters.
// Many Compiled instances (one per worker) share one program.
type program struct {
	spec Spec

	appIndex map[string]int
	apps     []appFacts
	pstates  int

	// ops has one entry per base feature (the first width entries feed
	// the design vector directly) followed by any interaction operand ops;
	// cols lists, per design-vector column, the op slot that produces it.
	ops  []featOp
	cols []int
	// usesCo marks programs with at least one co-app sum op: only those
	// resolve co-app names, preserving the interpreted path's behaviour of
	// never touching co-app baselines when no feature reads them.
	usesCo bool

	// Linear technique: Eq. 1 folded to a dot product.
	coef     []float64
	constant float64

	// Neural technique: the layer chain plus the fitted scalers.
	layers   []compiledLayer
	act      mlp.Activation
	xMean    []float64
	xStd     []float64
	yMean    float64
	yStd     float64
	maxWidth int
}

// compiledLayer is one dense layer with its parameters sliced out of the
// network's flat vector (weights row-major by output node, as mlp lays
// them out).
type compiledLayer struct {
	in, out int
	w       []float64 // out × in
	b       []float64 // out
	last    bool      // linear output layer
}

// width returns the design-vector width the program expects.
func (p *program) width() int { return len(p.cols) }

// compileProgram specialises a trained model. It never panics: a model
// whose shape is inconsistent (possible only for artefacts that slipped
// past load validation) yields an error, and the model simply stays on
// the interpreted path.
func (m *Model) compileProgram() (*program, error) {
	if m.baselines == nil {
		return nil, fmt.Errorf("core: compile: model has no baseline store")
	}
	if len(m.baselines.PStateFreqs) == 0 {
		return nil, fmt.Errorf("core: compile: model has no P-state table")
	}
	set := m.Spec.FeatureSet
	if len(set.Features) == 0 {
		return nil, fmt.Errorf("core: compile: empty feature set")
	}
	p := &program{
		spec:     m.Spec,
		appIndex: make(map[string]int, len(m.baselines.Baselines)),
		pstates:  len(m.baselines.PStateFreqs),
	}
	// Bake the fact table: one baseline lookup per app name, forever.
	for _, name := range m.Apps() {
		b, err := m.baselines.Baseline(name)
		if err != nil {
			return nil, fmt.Errorf("core: compile: %w", err)
		}
		if len(b.SecondsByPState) != p.pstates {
			return nil, fmt.Errorf("core: compile: baseline %q covers %d P-states; machine has %d",
				name, len(b.SecondsByPState), p.pstates)
		}
		f := appFacts{secondsByPState: b.SecondsByPState}
		f.stats[statMem] = b.MemIntensity
		f.stats[statCMCA] = b.CMPerCA
		f.stats[statCAINS] = b.CAPerIns
		p.appIndex[name] = len(p.apps)
		p.apps = append(p.apps, f)
	}
	// Flatten the feature pipeline. Base features first (design-vector
	// order), then interaction products, whose operands reuse a base
	// feature's op when present and get a private operand op otherwise —
	// the same values features.Vector computes, in the same column order.
	baseSlot := make(map[features.Feature]int, len(set.Features))
	for _, f := range set.Features {
		op, err := compileFeature(f)
		if err != nil {
			return nil, err
		}
		slot := len(p.ops)
		p.ops = append(p.ops, op)
		p.cols = append(p.cols, slot)
		if _, dup := baseSlot[f]; !dup {
			baseSlot[f] = slot
		}
	}
	operand := func(f features.Feature) (int, error) {
		if slot, ok := baseSlot[f]; ok {
			return slot, nil
		}
		op, err := compileFeature(f)
		if err != nil {
			return 0, err
		}
		p.ops = append(p.ops, op)
		return len(p.ops) - 1, nil
	}
	for _, pair := range set.Interactions {
		a, err := operand(pair[0])
		if err != nil {
			return nil, err
		}
		b, err := operand(pair[1])
		if err != nil {
			return nil, err
		}
		p.ops = append(p.ops, featOp{kind: opProduct, a: a, b: b})
		p.cols = append(p.cols, len(p.ops)-1)
	}
	for _, op := range p.ops {
		if op.kind == opCoSumStat {
			p.usesCo = true
		}
	}
	width := p.width()

	switch {
	case m.lin != nil:
		if len(m.lin.Coefficients) != width {
			return nil, fmt.Errorf("core: compile: linear model has %d coefficients for width %d",
				len(m.lin.Coefficients), width)
		}
		p.coef = m.lin.Coefficients
		p.constant = m.lin.Constant
	case m.net != nil:
		if m.xScaler == nil || m.yScaler == nil {
			return nil, fmt.Errorf("core: compile: neural model missing scalers")
		}
		if len(m.xScaler.Mean) != width || len(m.xScaler.Std) != width {
			return nil, fmt.Errorf("core: compile: scaler fitted on %d columns for width %d",
				len(m.xScaler.Mean), width)
		}
		cfg := m.net.Config()
		if cfg.Inputs != width {
			return nil, fmt.Errorf("core: compile: network expects %d inputs for width %d", cfg.Inputs, width)
		}
		p.act = cfg.Activation
		p.xMean, p.xStd = m.xScaler.Mean, m.xScaler.Std
		p.yMean, p.yStd = m.yScaler.Mean, m.yScaler.Std
		params := m.net.Params()
		sizes := append([]int{cfg.Inputs}, cfg.Hidden...)
		sizes = append(sizes, 1)
		p.maxWidth = width
		off := 0
		for l := 0; l+1 < len(sizes); l++ {
			in, out := sizes[l], sizes[l+1]
			ly := compiledLayer{
				in: in, out: out,
				w:    params[off : off+in*out],
				last: l+2 == len(sizes),
			}
			off += in * out
			ly.b = params[off : off+out]
			off += out
			p.layers = append(p.layers, ly)
			if out > p.maxWidth {
				p.maxWidth = out
			}
		}
		if off != len(params) {
			return nil, fmt.Errorf("core: compile: network has %d params for its layer shapes (want %d)", len(params), off)
		}
	default:
		return nil, fmt.Errorf("core: compile: model %s not trained", m.Spec)
	}
	return p, nil
}

// compileFeature maps one Table I feature to its opcode.
func compileFeature(f features.Feature) (featOp, error) {
	switch f {
	case features.BaseExTime:
		return featOp{kind: opBaseExTime}, nil
	case features.NumCoApp:
		return featOp{kind: opNumCoApp}, nil
	case features.TargetMem:
		return featOp{kind: opTargetStat, stat: statMem}, nil
	case features.TargetCMCA:
		return featOp{kind: opTargetStat, stat: statCMCA}, nil
	case features.TargetCAINS:
		return featOp{kind: opTargetStat, stat: statCAINS}, nil
	case features.CoAppMem:
		return featOp{kind: opCoSumStat, stat: statMem}, nil
	case features.CoAppCMCA:
		return featOp{kind: opCoSumStat, stat: statCMCA}, nil
	case features.CoAppCAINS:
		return featOp{kind: opCoSumStat, stat: statCAINS}, nil
	default:
		return featOp{}, fmt.Errorf("core: compile: unknown feature %d", int(f))
	}
}

// evalOps evaluates the op table for one scenario into vals (length
// len(p.ops)). All three co-app stat sums are accumulated in one pass
// over the co-apps — each sum still receives its terms in CoApps order
// with exactly the additions features.Value applies, so every slot is
// bit-identical to the interpreted feature pipeline, while each co-app
// name is resolved once per scenario instead of once per sum feature.
func (p *program) evalOps(sc features.Scenario, vals []float64) error {
	ti, ok := p.appIndex[sc.Target]
	if !ok {
		return fmt.Errorf("core: no baseline for application %q", sc.Target)
	}
	target := &p.apps[ti]
	var coSums [numAppStats]float64
	if p.usesCo {
		for _, name := range sc.CoApps {
			ci, ok := p.appIndex[name]
			if !ok {
				return fmt.Errorf("core: no baseline for application %q", name)
			}
			st := &p.apps[ci].stats
			coSums[statMem] += st[statMem]
			coSums[statCMCA] += st[statCMCA]
			coSums[statCAINS] += st[statCAINS]
		}
	}
	for i := range p.ops {
		op := &p.ops[i]
		switch op.kind {
		case opBaseExTime:
			if sc.PState < 0 || sc.PState >= p.pstates {
				return fmt.Errorf("core: P-state %d not in baseline for %s", sc.PState, sc.Target)
			}
			vals[i] = target.secondsByPState[sc.PState]
		case opNumCoApp:
			vals[i] = float64(len(sc.CoApps))
		case opTargetStat:
			vals[i] = target.stats[op.stat]
		case opCoSumStat:
			vals[i] = coSums[op.stat]
		default: // opProduct
			vals[i] = vals[op.a] * vals[op.b]
		}
	}
	return nil
}

// gather copies the design-vector columns out of an evaluated op table.
// For programs without interactions cols is the identity over the ops
// prefix, so the copy is a straight prefix move.
func (p *program) gather(vals, row []float64) {
	for j, slot := range p.cols {
		row[j] = vals[slot]
	}
}

// Compiled is one worker's instance of a compiled model: the shared
// immutable program plus private scratch, evaluated by fused closures.
// A warmed Compiled predicts — scalar or batched — with zero heap
// allocations.
//
// Reuse contract: a Compiled is NOT goroutine-safe. Keep exactly one per
// worker (the serving tier keeps one per P-core replica slot); Model's
// own Predict/PredictScenarios dispatch through an internal pool and stay
// goroutine-safe.
type Compiled struct {
	prog *program

	// scalar is the fused scalar closure: design vector in, prediction
	// out. Built once at compile time with the model's exact widths.
	scalar func(row []float64) float64

	vals []float64 // op-table scratch
	row  []float64 // design vector scratch
	actA []float64 // layer ping
	actB []float64 // layer pong

	// Batched scratch (grown on first batch, reused after).
	x    linalg.Matrix // design matrix
	actM [2]linalg.Matrix
}

// newCompiled builds a worker instance over a program.
func newCompiled(p *program) *Compiled {
	c := &Compiled{
		prog: p,
		vals: make([]float64, len(p.ops)),
		row:  make([]float64, p.width()),
	}
	if p.coef != nil {
		coef, constant := p.coef, p.constant
		// Eq. 1 folded to a single dot product: the sum starts at the
		// constant and adds terms in feature order, exactly as
		// linreg.Model.Predict does.
		c.scalar = func(row []float64) float64 {
			s := constant
			for j, f := range row {
				s += coef[j] * f
			}
			return s
		}
		return c
	}
	c.actA = make([]float64, p.maxWidth)
	c.actB = make([]float64, p.maxWidth)
	c.scalar = c.compileNetScalar()
	return c
}

// compileNetScalar fuses standardise → layer chain → de-standardise into
// one closure over the instance's ping-pong scratch. The common served
// shape — one hidden tanh layer — gets a fully fused fast path with no
// per-node dispatch of any kind; deeper or non-tanh networks share a
// generic loop whose activation is still resolved once per layer, not
// per node. Both reproduce predictVector's arithmetic order exactly.
func (c *Compiled) compileNetScalar() func(row []float64) float64 {
	p := c.prog
	mean, std := p.xMean, p.xStd
	yMean, yStd := p.yMean, p.yStd
	if len(p.layers) == 2 && p.act == mlp.Tanh {
		hidden, out := p.layers[0], p.layers[1]
		hw, hb := hidden.w, hidden.b
		ow, ob := out.w, out.b
		in, h := hidden.in, hidden.out
		z, a := c.actA, c.actB
		return func(row []float64) float64 {
			z = z[:in]
			for j, v := range row {
				z[j] = (v - mean[j]) / std[j]
			}
			a = a[:h]
			for o := 0; o < h; o++ {
				s := hb[o]
				w := hw[o*in : (o+1)*in]
				for i, v := range z {
					s += w[i] * v
				}
				a[o] = math.Tanh(s)
			}
			s := ob[0]
			for i, v := range a {
				s += ow[i] * v
			}
			return s*yStd + yMean
		}
	}
	layers, act := p.layers, p.act
	z, a := c.actA, c.actB
	return func(row []float64) float64 {
		cur := z[:len(row)]
		for j, v := range row {
			cur[j] = (v - mean[j]) / std[j]
		}
		next := a
		for li := range layers {
			ly := &layers[li]
			nx := next[:ly.out]
			for o := 0; o < ly.out; o++ {
				s := ly.b[o]
				w := ly.w[o*ly.in : (o+1)*ly.in]
				for i, v := range cur {
					s += w[i] * v
				}
				if ly.last {
					nx[o] = s
				} else {
					nx[o] = act.Apply(s)
				}
			}
			cur, next = nx, cur[:cap(cur)]
		}
		return cur[0]*yStd + yMean
	}
}

// Spec returns the compiled model's identity.
func (c *Compiled) Spec() Spec { return c.prog.spec }

// Predict is the compiled scalar fast path: bit-identical to the
// interpreted Model.Predict, with zero heap allocations when warm.
func (c *Compiled) Predict(sc features.Scenario) (float64, error) {
	if err := c.prog.evalOps(sc, c.vals); err != nil {
		return 0, err
	}
	c.prog.gather(c.vals, c.row)
	return c.scalar(c.row), nil
}

// growMat resizes m to r×c, reusing its backing array when large enough.
func growMat(m *linalg.Matrix, r, cDim int) {
	if cap(m.Data) < r*cDim {
		m.Data = make([]float64, r*cDim)
	}
	m.Data = m.Data[:r*cDim]
	m.Rows, m.Cols = r, cDim
}

// PredictScenarios evaluates every scenario in one batched pass into out
// (length len(scs)): the compiled counterpart of Model.PredictScenarios,
// bit-identical to it and to per-scenario Predict. The design matrix is
// filled by the compiled feature pipeline and each layer runs one blocked
// kernel over the whole batch. Zero heap allocations once the scratch has
// grown to the batch size.
func (c *Compiled) PredictScenarios(scs []features.Scenario, out []float64) error {
	if len(out) != len(scs) {
		return fmt.Errorf("core: output length %d for %d scenarios", len(out), len(scs))
	}
	if len(scs) == 0 {
		return nil
	}
	p := c.prog
	width := p.width()
	growMat(&c.x, len(scs), width)
	for i, sc := range scs {
		if err := p.evalOps(sc, c.vals); err != nil {
			return err
		}
		p.gather(c.vals, c.x.Data[i*width:(i+1)*width])
	}
	if p.coef != nil {
		linalg.GemvBiasInto(out, &c.x, p.coef, p.constant)
		return nil
	}
	// Standardise in place (the matrix is private scratch), then one
	// bias-broadcast + blocked GEMM per layer — the same element-wise
	// operations, in the same order, as Scaler.Transform followed by
	// mlp's forwardBatch.
	for i := 0; i < c.x.Rows; i++ {
		rowD := c.x.Data[i*width : (i+1)*width]
		for j, v := range rowD {
			rowD[j] = (v - p.xMean[j]) / p.xStd[j]
		}
	}
	src := &c.x
	for li := range p.layers {
		ly := &p.layers[li]
		dst := &c.actM[li%2]
		growMat(dst, len(scs), ly.out)
		for s := 0; s < dst.Rows; s++ {
			copy(dst.Data[s*ly.out:(s+1)*ly.out], ly.b)
		}
		wm := linalg.Matrix{Rows: ly.out, Cols: ly.in, Data: ly.w}
		linalg.AccumMulABT8(dst, src, &wm)
		if !ly.last {
			if p.act == mlp.Tanh {
				for i, v := range dst.Data {
					dst.Data[i] = math.Tanh(v)
				}
			} else {
				for i, v := range dst.Data {
					dst.Data[i] = p.act.Apply(v)
				}
			}
		}
		src = dst
	}
	for i := range out {
		out[i] = src.Data[i]*p.yStd + p.yMean
	}
	return nil
}

// ---- Model integration ----

// initCompiled specialises the model after training or loading. A model
// that cannot compile (possible only for inconsistent artefacts) keeps
// prog nil and serves every prediction through the interpreted path.
func (m *Model) initCompiled() {
	p, err := m.compileProgram()
	if err != nil {
		return
	}
	m.prog = p
	m.cpool.New = func() any { return newCompiled(p) }
}

// IsCompiled reports whether the model carries a compiled program (set at
// train/load time; false only for models whose artefact shape defeated
// the compiler, which then predict through the interpreted path).
func (m *Model) IsCompiled() bool { return m.prog != nil }

// Compile returns a fresh compiled instance of the model for a single
// worker: the fused, allocation-free fast path behind Predict. Callers
// that predict from many goroutines keep one Compiled per worker (see the
// serving tier's per-P-core replicas); Model.Predict itself remains
// goroutine-safe by pooling instances internally.
func (m *Model) Compile() (*Compiled, error) {
	if m.prog == nil {
		p, err := m.compileProgram()
		if err != nil {
			return nil, err
		}
		return newCompiled(p), nil
	}
	return newCompiled(m.prog), nil
}

// compiled checks out a pooled worker instance (nil when the model has no
// program).
func (m *Model) compiled() *Compiled {
	if m.prog == nil {
		return nil
	}
	return m.cpool.Get().(*Compiled)
}
