package core

import (
	"testing"

	"colocmodel/internal/features"
	"colocmodel/internal/mlp"
)

// A reused TrainScratch must produce the same models as scratch-free
// Train, bit-for-bit, even after the scratch has been warmed by fits of
// other shapes and techniques.
func TestTrainWithScratchMatchesTrain(t *testing.T) {
	ds := testDataset(t)
	setC, _ := features.SetByName("C")
	setF, _ := features.SetByName("F")
	scratch := NewTrainScratch()
	specs := []Spec{
		{Technique: Linear, FeatureSet: setC},
		{Technique: NeuralNet, FeatureSet: setF, Seed: 3, SCG: mlp.SCGConfig{MaxIter: 40}},
		{Technique: Linear, FeatureSet: setF},
		{Technique: NeuralNet, FeatureSet: setC, Seed: 9, SCG: mlp.SCGConfig{MaxIter: 40}},
	}
	for _, spec := range specs {
		fresh, err := Train(spec, ds, ds.Records)
		if err != nil {
			t.Fatalf("%s: Train: %v", spec, err)
		}
		reused, err := TrainWithScratch(spec, ds, ds.Records, scratch)
		if err != nil {
			t.Fatalf("%s: TrainWithScratch: %v", spec, err)
		}
		for _, r := range ds.Records[:20] {
			sc := features.ScenarioFromRecord(r)
			a, err := fresh.Predict(sc)
			if err != nil {
				t.Fatal(err)
			}
			b, err := reused.Predict(sc)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("%s: scratch-trained model diverges: %v != %v", spec, b, a)
			}
		}
	}
}

// Batched PredictRecords and PredictScenarios must agree bit-for-bit with
// scenario-at-a-time Predict for both techniques.
func TestBatchedPredictionMatchesPredict(t *testing.T) {
	ds := testDataset(t)
	set, _ := features.SetByName("F")
	for _, spec := range []Spec{
		{Technique: Linear, FeatureSet: set},
		{Technique: NeuralNet, FeatureSet: set, Seed: 3, SCG: mlp.SCGConfig{MaxIter: 60}},
	} {
		m, err := Train(spec, ds, ds.Records)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		recs := ds.Records[:37]
		batch, err := m.PredictRecords(recs)
		if err != nil {
			t.Fatal(err)
		}
		scs := make([]features.Scenario, len(recs))
		for i, r := range recs {
			scs[i] = features.ScenarioFromRecord(r)
		}
		byScenario, err := m.PredictScenarios(scs)
		if err != nil {
			t.Fatal(err)
		}
		for i, sc := range scs {
			want, err := m.Predict(sc)
			if err != nil {
				t.Fatal(err)
			}
			if batch[i] != want {
				t.Fatalf("%s: PredictRecords[%d] = %v, Predict = %v", spec, i, batch[i], want)
			}
			if byScenario[i] != want {
				t.Fatalf("%s: PredictScenarios[%d] = %v, Predict = %v", spec, i, byScenario[i], want)
			}
		}
	}
}

// Empty inputs are a no-op, not an error (features.Matrix rejects empty
// record sets, so the batched paths must short-circuit first).
func TestBatchedPredictionEmpty(t *testing.T) {
	ds := testDataset(t)
	set, _ := features.SetByName("C")
	m, err := Train(Spec{Technique: Linear, FeatureSet: set}, ds, ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := m.PredictRecords(nil); err != nil || len(out) != 0 {
		t.Fatalf("PredictRecords(nil) = %v, %v", out, err)
	}
	if out, err := m.PredictScenarios(nil); err != nil || len(out) != 0 {
		t.Fatalf("PredictScenarios(nil) = %v, %v", out, err)
	}
}
