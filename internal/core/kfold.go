package core

import (
	"fmt"

	"colocmodel/internal/harness"
	"colocmodel/internal/stats"
	"colocmodel/internal/xrand"
)

// K-fold cross-validation is an alternative to the paper's repeated
// random sub-sampling protocol (Section IV-B4). The paper chose bootstrap
// sub-sampling; this implementation exists so the ablation benchmarks can
// quantify whether the protocol choice moves the reported errors — it
// does not, materially, which supports the paper's choice of the cheaper
// protocol.

// KFoldResult aggregates a model's accuracy across folds.
type KFoldResult struct {
	// Spec identifies the model.
	Spec Spec
	// Folds is the number of folds evaluated.
	Folds int
	// TestMPE and TestNRMSE average the held-out fold errors.
	TestMPE, TestNRMSE float64
	// TrainMPE and TrainNRMSE average the in-fold training errors.
	TrainMPE, TrainNRMSE float64
	// PerFold holds raw per-fold errors.
	PerFold []PartitionErrors
}

// KFold runs k-fold cross-validation for one model spec: the records are
// shuffled once, split into k equal folds, and each fold serves once as
// the held-out test set.
func KFold(spec Spec, ds *harness.Dataset, k int, seed uint64) (*KFoldResult, error) {
	if ds == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	n := len(ds.Records)
	if k < 2 || k > n {
		return nil, fmt.Errorf("core: k=%d out of [2,%d]", k, n)
	}
	perm := xrand.New(seed).Perm(n)
	res := &KFoldResult{Spec: spec, Folds: k}
	var trainMPEs, testMPEs, trainNRMSEs, testNRMSEs []float64
	scratch := NewTrainScratch() // folds run sequentially; one scratch serves all
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		test := make([]int, 0, hi-lo)
		train := make([]int, 0, n-(hi-lo))
		for i, p := range perm {
			if i >= lo && i < hi {
				test = append(test, p)
			} else {
				train = append(train, p)
			}
		}
		pe, err := evaluatePartition(spec, ds, stats.Partition{Train: train, Test: test}, seed+uint64(f), scratch)
		if err != nil {
			return nil, err
		}
		res.PerFold = append(res.PerFold, pe)
		trainMPEs = append(trainMPEs, pe.TrainMPE)
		testMPEs = append(testMPEs, pe.TestMPE)
		trainNRMSEs = append(trainNRMSEs, pe.TrainNRMSE)
		testNRMSEs = append(testNRMSEs, pe.TestNRMSE)
	}
	res.TrainMPE = stats.Mean(trainMPEs)
	res.TestMPE = stats.Mean(testMPEs)
	res.TrainNRMSE = stats.Mean(trainNRMSEs)
	res.TestNRMSE = stats.Mean(testNRMSEs)
	return res, nil
}
