package dram

import (
	"math"
	"testing"
	"testing/quick"
)

func validCfg() Config {
	return Config{
		BaseLatencyNs:    80,
		PeakBandwidthGBs: 32,
		Channels:         3,
		BanksPerChannel:  8,
		LineBytes:        64,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := validCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	mut := []func(*Config){
		func(c *Config) { c.BaseLatencyNs = 0 },
		func(c *Config) { c.PeakBandwidthGBs = -1 },
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.BanksPerChannel = 0 },
		func(c *Config) { c.LineBytes = 0 },
	}
	for i, m := range mut {
		cfg := validCfg()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted zero config")
	}
}

func TestIdleLatencyIsBase(t *testing.T) {
	c, err := New(validCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Latency(0); got != 80 {
		t.Fatalf("idle latency %v, want 80", got)
	}
	if c.SlowdownFactor(0) != 1 {
		t.Fatal("idle slowdown != 1")
	}
}

func TestLatencyMonotoneInLoad(t *testing.T) {
	c, _ := New(validCfg())
	prev := c.Latency(0)
	for load := 1e6; load < 1e12; load *= 2 {
		l := c.Latency(load)
		if l < prev-1e-9 {
			t.Fatalf("latency decreased at load %v: %v < %v", load, l, prev)
		}
		prev = l
	}
}

func TestLatencySuperlinearNearSaturation(t *testing.T) {
	c, _ := New(validCfg())
	cap := c.BandwidthCap()
	low := c.Latency(0.1*cap) - c.Latency(0)
	high := c.Latency(0.95*cap) - c.Latency(0.85*cap)
	// The same 10%-of-cap increment must cost far more delay near
	// saturation than near idle: the queueing nonlinearity.
	if high < 5*low {
		t.Fatalf("queueing knee too soft: low-delta %v, high-delta %v", low, high)
	}
}

func TestLatencyFiniteBeyondSaturation(t *testing.T) {
	c, _ := New(validCfg())
	l := c.Latency(1e18)
	if math.IsInf(l, 0) || math.IsNaN(l) {
		t.Fatalf("latency not finite at overload: %v", l)
	}
}

func TestUtilizationLinear(t *testing.T) {
	c, _ := New(validCfg())
	// 32 GB/s peak, 64B lines: 0.5e9 misses/s = full utilisation.
	u := c.Utilization(0.5e9)
	if math.Abs(u-1) > 1e-9 {
		t.Fatalf("utilization = %v, want 1", u)
	}
	if c.Utilization(-5) != 0 {
		t.Fatal("negative load gives nonzero utilization")
	}
}

func TestBandwidthCapAndThrottle(t *testing.T) {
	c, _ := New(validCfg())
	cap := c.BandwidthCap()
	if got := c.ThrottledRate(cap * 2); got != cap {
		t.Fatalf("throttled rate %v, want %v", got, cap)
	}
	if got := c.ThrottledRate(cap / 2); got != cap/2 {
		t.Fatalf("below-cap rate altered: %v", got)
	}
}

func TestMoreBanksLowerQueueing(t *testing.T) {
	few := validCfg()
	few.BanksPerChannel = 1
	many := validCfg()
	many.BanksPerChannel = 16
	cf, _ := New(few)
	cm, _ := New(many)
	load := 0.9 * cf.BandwidthCap()
	if cm.Latency(load) >= cf.Latency(load) {
		t.Fatalf("more banks did not reduce latency: %v vs %v", cm.Latency(load), cf.Latency(load))
	}
}

// Property: latency ≥ base latency for all finite loads, and slowdown
// factor ≥ 1.
func TestLatencyBoundsProperty(t *testing.T) {
	c, _ := New(validCfg())
	f := func(loadRaw uint32) bool {
		load := float64(loadRaw) * 1e4
		l := c.Latency(load)
		return l >= c.Config().BaseLatencyNs && c.SlowdownFactor(load) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLatency(b *testing.B) {
	c, _ := New(validCfg())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Latency(float64(i % 1000000000))
	}
}
