// Package dram models the main-memory side of co-location interference:
// the average memory access latency seen by LLC misses as a function of
// the aggregate miss bandwidth the co-located applications generate.
//
// The paper attributes co-location slowdown to contention in the shared
// LLC *and* in DRAM ("sharing of system resources such as DRAM and the
// last-level cache ... creates contention and increases the memory
// intensity of all applications" — Section I). The model here is an
// M/M/1-style queueing controller with bank-level parallelism: as the
// offered load approaches the controller's service bandwidth, queueing
// delay grows superlinearly. This is the dominant nonlinearity that makes
// the paper's neural-network models outperform the linear ones.
package dram

import (
	"fmt"
	"math"
)

// Config describes a memory controller.
type Config struct {
	// BaseLatencyNs is the unloaded (idle) access latency: row access +
	// channel transfer, in nanoseconds.
	BaseLatencyNs float64
	// PeakBandwidthGBs is the sustainable controller bandwidth in GB/s.
	PeakBandwidthGBs float64
	// Channels is the number of independent channels; load spreads evenly.
	Channels int
	// BanksPerChannel gives bank-level parallelism: more banks soften the
	// queueing knee by allowing overlapped service.
	BanksPerChannel int
	// LineBytes is the transfer granularity (one LLC line per miss).
	LineBytes int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BaseLatencyNs <= 0 {
		return fmt.Errorf("dram: base latency must be positive, got %v", c.BaseLatencyNs)
	}
	if c.PeakBandwidthGBs <= 0 {
		return fmt.Errorf("dram: peak bandwidth must be positive, got %v", c.PeakBandwidthGBs)
	}
	if c.Channels <= 0 || c.BanksPerChannel <= 0 {
		return fmt.Errorf("dram: channels and banks must be positive, got %d, %d", c.Channels, c.BanksPerChannel)
	}
	if c.LineBytes <= 0 {
		return fmt.Errorf("dram: line bytes must be positive, got %d", c.LineBytes)
	}
	return nil
}

// Controller is an analytical DRAM latency model.
type Controller struct {
	cfg Config
}

// New constructs a Controller.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg}, nil
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// maxUtilization caps effective utilisation so latency stays finite; real
// controllers throttle requesters rather than diverge.
const maxUtilization = 0.97

// Utilization returns the offered load as a fraction of peak bandwidth for
// the given aggregate miss rate (misses per second across all co-located
// applications), uncapped.
func (c *Controller) Utilization(missesPerSec float64) float64 {
	if missesPerSec <= 0 {
		return 0
	}
	bytesPerSec := missesPerSec * float64(c.cfg.LineBytes)
	return bytesPerSec / (c.cfg.PeakBandwidthGBs * 1e9)
}

// Latency returns the average memory access latency in nanoseconds when
// the co-located applications collectively generate missesPerSec LLC
// misses per second.
//
// The model follows measured loaded-latency curves: the unloaded latency
// plus an M/M/1-form queueing term s·ρ/(1−ρ) whose effective service time
// s is the fraction of the base latency spent in the contended stages
// (controller queue, bank busy time), reduced by bank-level parallelism.
// Utilisation is capped below 1 (hardware throttles rather than
// diverges), so loaded latency saturates at several times the base —
// matching real controllers rather than growing without bound.
func (c *Controller) Latency(missesPerSec float64) float64 {
	rho := c.Utilization(missesPerSec)
	if rho > maxUtilization {
		rho = maxUtilization
	}
	serviceNs := c.cfg.BaseLatencyNs / math.Sqrt(float64(c.cfg.BanksPerChannel))
	queueNs := serviceNs * rho / (1 - rho)
	return c.cfg.BaseLatencyNs + queueNs
}

// SlowdownFactor returns Latency(load)/Latency(0): the multiplicative
// memory-latency inflation co-location causes.
func (c *Controller) SlowdownFactor(missesPerSec float64) float64 {
	return c.Latency(missesPerSec) / c.cfg.BaseLatencyNs
}

// BandwidthCap returns the highest miss rate (misses/second) the
// controller admits before throttling, i.e. the miss rate at
// maxUtilization.
func (c *Controller) BandwidthCap() float64 {
	return maxUtilization * c.cfg.PeakBandwidthGBs * 1e9 / float64(c.cfg.LineBytes)
}

// ThrottledRate returns the admitted aggregate miss rate for an offered
// aggregate rate: offered demand beyond the bandwidth cap queues, so the
// effective service rate saturates at the cap.
func (c *Controller) ThrottledRate(offeredMissesPerSec float64) float64 {
	cap := c.BandwidthCap()
	if offeredMissesPerSec <= cap {
		return offeredMissesPerSec
	}
	return cap
}
