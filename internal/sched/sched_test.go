package sched

import (
	"sync"
	"testing"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/harness"
	"colocmodel/internal/simproc"
	"colocmodel/internal/workload"
)

var (
	modelOnce sync.Once
	modelVal  *core.Model
	modelErr  error
)

// trainedModel trains one neural F model on a reduced 6-core dataset.
func trainedModel(t testing.TB) *core.Model {
	t.Helper()
	modelOnce.Do(func() {
		cg, _ := workload.ByName("cg")
		sp, _ := workload.ByName("sp")
		ep, _ := workload.ByName("ep")
		canneal, _ := workload.ByName("canneal")
		plan := harness.Plan{
			Spec:       simproc.XeonE5649(),
			Targets:    []workload.App{cg, canneal, ep},
			CoApps:     []workload.App{cg, sp, ep},
			CoCounts:   []int{1, 2, 3, 5},
			PStates:    []int{0},
			NoiseSigma: 0.005,
			Seed:       3,
		}
		ds, err := harness.Collect(plan)
		if err != nil {
			modelErr = err
			return
		}
		set, _ := features.SetByName("F")
		modelVal, modelErr = core.Train(core.Spec{Technique: core.NeuralNet, FeatureSet: set, Seed: 4}, ds, ds.Records)
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return modelVal
}

func TestObliviousPacksDensely(t *testing.T) {
	spec := simproc.XeonE5649()
	jobs := []string{"cg", "cg", "ep", "ep", "canneal", "canneal", "cg"}
	asg := Oblivious(spec, jobs)
	if asg.MachinesUsed() != 2 {
		t.Fatalf("oblivious used %d machines, want 2", asg.MachinesUsed())
	}
	if asg.JobCount() != len(jobs) {
		t.Fatalf("job count %d, want %d", asg.JobCount(), len(jobs))
	}
	if len(asg[0]) != spec.Cores {
		t.Fatalf("first machine has %d jobs, want full %d", len(asg[0]), spec.Cores)
	}
}

func TestObliviousEmpty(t *testing.T) {
	asg := Oblivious(simproc.XeonE5649(), nil)
	if asg.MachinesUsed() != 0 || asg.JobCount() != 0 {
		t.Fatal("empty job list produced machines")
	}
}

func TestGreedyAwareRespectsQoS(t *testing.T) {
	m := trainedModel(t)
	spec := simproc.XeonE5649()
	jobs := []string{"cg", "cg", "cg", "ep", "ep", "ep", "canneal", "canneal"}
	asg, err := GreedyAware(m, spec, jobs, AwareConfig{MaxSlowdown: 1.10, PState: 0})
	if err != nil {
		t.Fatal(err)
	}
	if asg.JobCount() != len(jobs) {
		t.Fatalf("placed %d of %d jobs", asg.JobCount(), len(jobs))
	}
	// Predicted worst slowdown within bound on every machine.
	for mi, residents := range asg {
		worst, err := worstPredictedSlowdown(m, residents, 0)
		if err != nil {
			t.Fatal(err)
		}
		if worst > 1.10+1e-9 {
			t.Fatalf("machine %d predicted worst %v exceeds bound", mi, worst)
		}
	}
}

func TestGreedyAwareUsesFewerMachinesWithLooserBound(t *testing.T) {
	m := trainedModel(t)
	spec := simproc.XeonE5649()
	jobs := []string{"cg", "cg", "cg", "canneal", "canneal", "ep", "ep", "ep"}
	tight, err := GreedyAware(m, spec, jobs, AwareConfig{MaxSlowdown: 1.05, PState: 0})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := GreedyAware(m, spec, jobs, AwareConfig{MaxSlowdown: 1.60, PState: 0})
	if err != nil {
		t.Fatal(err)
	}
	if loose.MachinesUsed() > tight.MachinesUsed() {
		t.Fatalf("loose bound used more machines (%d) than tight (%d)",
			loose.MachinesUsed(), tight.MachinesUsed())
	}
}

func TestGreedyAwareErrors(t *testing.T) {
	m := trainedModel(t)
	if _, err := GreedyAware(nil, simproc.XeonE5649(), []string{"cg"}, AwareConfig{MaxSlowdown: 1.2}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := GreedyAware(m, simproc.XeonE5649(), []string{"cg"}, AwareConfig{MaxSlowdown: 0.9}); err == nil {
		t.Fatal("bound below 1 accepted")
	}
	if _, err := GreedyAware(m, simproc.XeonE5649(), []string{"ghost"}, AwareConfig{MaxSlowdown: 1.2}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestGreedyAwareMachineCap(t *testing.T) {
	m := trainedModel(t)
	spec := simproc.XeonE5649()
	jobs := []string{"cg", "cg", "cg", "cg"}
	asg, err := GreedyAware(m, spec, jobs, AwareConfig{MaxSlowdown: 1.01, PState: 0, MaxMachines: 1})
	if err != nil {
		t.Fatal(err)
	}
	if asg.MachinesUsed() != 1 {
		t.Fatalf("capped fleet used %d machines", asg.MachinesUsed())
	}
	if asg.JobCount() != 4 {
		t.Fatalf("placed %d jobs", asg.JobCount())
	}
}

func TestMeasureReportsViolations(t *testing.T) {
	spec := simproc.XeonE5649()
	// Six cg on one machine: heavy contention, tiny bound -> violations.
	asg := Assignment{{"cg", "cg", "cg", "cg", "cg", "cg"}}
	ev, err := Measure(spec, asg, 0, 1.01)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Violations == 0 {
		t.Fatal("dense cg packing produced no violations at 1% bound")
	}
	if ev.WorstSlowdown <= 1.05 {
		t.Fatalf("worst slowdown %v implausibly low", ev.WorstSlowdown)
	}
	if ev.MachinesUsed != 1 || len(ev.Outcomes) != 6 {
		t.Fatalf("evaluation shape: %+v", ev)
	}
	if ev.MeanSlowdown <= 1 {
		t.Fatalf("mean slowdown %v", ev.MeanSlowdown)
	}
}

func TestMeasureErrors(t *testing.T) {
	spec := simproc.XeonE5649()
	if _, err := Measure(spec, Assignment{{"cg", "cg", "cg", "cg", "cg", "cg", "cg"}}, 0, 1.2); err == nil {
		t.Fatal("overfull machine accepted")
	}
	if _, err := Measure(spec, Assignment{{"ghost"}}, 0, 1.2); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestAwareBeatsObliviousOnQoS(t *testing.T) {
	if testing.Short() {
		t.Skip("scheduling comparison is slow")
	}
	m := trainedModel(t)
	spec := simproc.XeonE5649()
	// A mix dominated by memory-intensive jobs.
	jobs := []string{"cg", "cg", "cg", "cg", "ep", "ep", "ep", "ep", "canneal", "canneal", "canneal", "canneal"}
	const bound = 1.15

	sorted, err := SortJobsByIntensity(spec, jobs)
	if err != nil {
		t.Fatal(err)
	}
	awareAsg, err := GreedyAware(m, spec, sorted, AwareConfig{MaxSlowdown: bound, PState: 0})
	if err != nil {
		t.Fatal(err)
	}
	obliviousAsg := Oblivious(spec, jobs)

	aware, err := Measure(spec, awareAsg, 0, bound)
	if err != nil {
		t.Fatal(err)
	}
	oblivious, err := Measure(spec, obliviousAsg, 0, bound)
	if err != nil {
		t.Fatal(err)
	}
	if aware.Violations >= oblivious.Violations && aware.WorstSlowdown >= oblivious.WorstSlowdown {
		t.Fatalf("aware scheduling no better: aware %d violations/worst %.3f vs oblivious %d/%.3f",
			aware.Violations, aware.WorstSlowdown, oblivious.Violations, oblivious.WorstSlowdown)
	}
}

func TestSortJobsByIntensity(t *testing.T) {
	spec := simproc.XeonE5649()
	sorted, err := SortJobsByIntensity(spec, []string{"ep", "cg", "canneal"})
	if err != nil {
		t.Fatal(err)
	}
	if sorted[0] != "cg" || sorted[2] != "ep" {
		t.Fatalf("sorted = %v", sorted)
	}
	if _, err := SortJobsByIntensity(spec, []string{"ghost"}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestPStatePlanMeetsDeadline(t *testing.T) {
	m := trainedModel(t)
	spec := simproc.XeonE5649()
	sc := features.Scenario{Target: "canneal", CoApps: []string{"cg"}}
	// Generous deadline: the plan must pick a P-state slower than P0
	// (less energy) and still meet it.
	choices, best, ok, err := PStatePlan(m, spec, sc, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("generous deadline not met")
	}
	if len(choices) != spec.PStates.Len() {
		t.Fatalf("got %d choices", len(choices))
	}
	if best == 0 {
		t.Fatal("generous deadline should allow a slower P-state than P0")
	}
	for _, c := range choices {
		if !c.MeetsDeadline {
			t.Fatalf("P%d misses a generous deadline", c.PState)
		}
	}
	// The recommendation is the energy minimum among feasible points.
	for _, c := range choices {
		if c.MeetsDeadline && c.TargetEnergyJ < choices[best].TargetEnergyJ {
			t.Fatalf("P%d cheaper than recommended P%d", c.PState, best)
		}
	}
}

func TestPStatePlanTightDeadline(t *testing.T) {
	m := trainedModel(t)
	spec := simproc.XeonE5649()
	sc := features.Scenario{Target: "canneal", CoApps: []string{"cg", "cg"}}
	// Impossible deadline: fall back to P0, flagged infeasible.
	choices, best, ok, err := PStatePlan(m, spec, sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("1-second deadline reported feasible")
	}
	if best != 0 {
		t.Fatalf("infeasible plan recommends P%d, want P0", best)
	}
	if choices[0].MeetsDeadline {
		t.Fatal("P0 cannot meet a 1-second deadline")
	}
}

func TestPStatePlanErrors(t *testing.T) {
	m := trainedModel(t)
	spec := simproc.XeonE5649()
	sc := features.Scenario{Target: "canneal"}
	if _, _, _, err := PStatePlan(nil, spec, sc, 100); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, _, _, err := PStatePlan(m, spec, sc, 0); err == nil {
		t.Fatal("zero deadline accepted")
	}
	if _, _, _, err := PStatePlan(m, spec, features.Scenario{Target: "ghost"}, 100); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestSimulateBatchPackFirst(t *testing.T) {
	spec := simproc.XeonE5649()
	jobs := []string{"cg", "cg", "ep", "ep", "canneal", "canneal", "ft", "sp"}
	res, err := SimulateBatch(spec, jobs, BatchConfig{
		Machines: 2, PState: 0, Policy: PackFirst, MaxSlowdown: 1.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != len(jobs) {
		t.Fatalf("completed %d of %d", len(res.Jobs), len(jobs))
	}
	if res.MakespanSeconds <= 0 || res.EnergyJ <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	// Completion order is sorted.
	for i := 1; i < len(res.Jobs); i++ {
		if res.Jobs[i].FinishSeconds < res.Jobs[i-1].FinishSeconds {
			t.Fatal("jobs not sorted by finish time")
		}
	}
	for _, j := range res.Jobs {
		if j.Slowdown < 0.99 {
			t.Fatalf("%s slowdown %v below 1", j.Job, j.Slowdown)
		}
		if j.StartSeconds < 0 || j.FinishSeconds <= j.StartSeconds {
			t.Fatalf("%s has invalid interval [%v, %v]", j.Job, j.StartSeconds, j.FinishSeconds)
		}
	}
	// 8 jobs on 2x6 cores: everything starts immediately under PackFirst.
	for _, j := range res.Jobs {
		if j.StartSeconds != 0 {
			t.Fatalf("%s deferred under PackFirst with free cores", j.Job)
		}
	}
}

func TestSimulateBatchQueueing(t *testing.T) {
	// More jobs than cores: later jobs must wait for completions.
	spec := simproc.XeonE5649()
	jobs := make([]string, 9)
	for i := range jobs {
		jobs[i] = "ft"
	}
	res, err := SimulateBatch(spec, jobs, BatchConfig{Machines: 1, PState: 0, Policy: PackFirst})
	if err != nil {
		t.Fatal(err)
	}
	deferred := 0
	for _, j := range res.Jobs {
		if j.StartSeconds > 0 {
			deferred++
		}
	}
	if deferred != 3 {
		t.Fatalf("%d jobs deferred, want 3 (9 jobs on 6 cores)", deferred)
	}
}

func TestSimulateBatchAwareReducesViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("batch comparison is slow")
	}
	m := trainedModel(t)
	spec := simproc.XeonE5649()
	jobs := []string{"cg", "cg", "cg", "cg", "ep", "ep", "ep", "ep", "canneal", "canneal"}
	const bound = 1.15
	packed, err := SimulateBatch(spec, jobs, BatchConfig{
		Machines: 2, PState: 0, Policy: PackFirst, MaxSlowdown: bound,
	})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := SimulateBatch(spec, jobs, BatchConfig{
		Machines: 2, PState: 0, Policy: AwareSpread, Model: m, MaxSlowdown: bound,
	})
	if err != nil {
		t.Fatal(err)
	}
	if aware.Violations > packed.Violations {
		t.Fatalf("aware policy has more violations: %d vs %d", aware.Violations, packed.Violations)
	}
	if aware.WorstSlowdown > packed.WorstSlowdown+0.02 {
		t.Fatalf("aware worst slowdown %v above packed %v", aware.WorstSlowdown, packed.WorstSlowdown)
	}
}

func TestSimulateBatchErrors(t *testing.T) {
	spec := simproc.XeonE5649()
	if _, err := SimulateBatch(spec, nil, BatchConfig{Machines: 1}); err == nil {
		t.Fatal("no jobs accepted")
	}
	if _, err := SimulateBatch(spec, []string{"cg"}, BatchConfig{Machines: 0}); err == nil {
		t.Fatal("no machines accepted")
	}
	if _, err := SimulateBatch(spec, []string{"ghost"}, BatchConfig{Machines: 1}); err == nil {
		t.Fatal("unknown job accepted")
	}
	if _, err := SimulateBatch(spec, []string{"cg"}, BatchConfig{Machines: 1, Policy: AwareSpread}); err == nil {
		t.Fatal("aware policy without model accepted")
	}
	m := trainedModel(t)
	if _, err := SimulateBatch(spec, []string{"cg"}, BatchConfig{Machines: 1, Policy: AwareSpread, Model: m, MaxSlowdown: 0.5}); err == nil {
		t.Fatal("bad bound accepted")
	}
	if _, err := SimulateBatch(spec, []string{"cg"}, BatchConfig{Machines: 1, Policy: BatchPolicy(9)}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestBatchPolicyString(t *testing.T) {
	if PackFirst.String() != "pack-first" || AwareSpread.String() != "aware-spread" {
		t.Fatal("policy names wrong")
	}
	if BatchPolicy(9).String() == "" {
		t.Fatal("unknown policy empty")
	}
}

func TestSteadyRatesConsistentWithBaseline(t *testing.T) {
	// One app alone: SteadyRates must match the baseline run's IPS.
	proc, err := simproc.New(simproc.XeonE5649())
	if err != nil {
		t.Fatal(err)
	}
	app, _ := workload.ByName("ft")
	rates, err := proc.SteadyRates([]workload.App{app}, 0)
	if err != nil {
		t.Fatal(err)
	}
	base, err := proc.RunBaseline(app, 0)
	if err != nil {
		t.Fatal(err)
	}
	baseIPS := app.Instructions / base.TargetSeconds
	if rates[0] < baseIPS*0.95 || rates[0] > baseIPS*1.05 {
		t.Fatalf("steady rate %v vs baseline IPS %v", rates[0], baseIPS)
	}
}

func TestSimulateOnlineArrivals(t *testing.T) {
	spec := simproc.XeonE5649()
	// Second job arrives long after the first completes: the fleet idles
	// in between and both jobs run alone (slowdown ~1).
	jobs := []BatchJob{
		{Name: "ft"},
		{Name: "ft", ArrivalSeconds: 10000},
	}
	res, err := SimulateOnline(spec, jobs, BatchConfig{Machines: 1, PState: 0, Policy: PackFirst})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("completed %d jobs", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if j.Slowdown > 1.02 {
			t.Fatalf("%s slowed down %v despite running alone", j.Job, j.Slowdown)
		}
	}
	second := res.Jobs[1]
	if second.StartSeconds < 10000 {
		t.Fatalf("second job started at %v before its arrival", second.StartSeconds)
	}
	if res.MakespanSeconds < 10000 {
		t.Fatalf("makespan %v ignores the late arrival", res.MakespanSeconds)
	}
}

func TestSimulateOnlineStaggeredContention(t *testing.T) {
	spec := simproc.XeonE5649()
	// A cg joins halfway through another cg's run: the first job's
	// overall slowdown sits strictly between solo (1.0) and full overlap.
	proc, _ := simproc.New(spec)
	cg, _ := workload.ByName("cg")
	base, err := proc.RunBaseline(cg, 0)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []BatchJob{
		{Name: "cg"},
		{Name: "cg", ArrivalSeconds: base.TargetSeconds / 2},
	}
	res, err := SimulateOnline(spec, jobs, BatchConfig{Machines: 1, PState: 0, Policy: PackFirst})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Jobs[0]
	if first.Job != "cg" || first.StartSeconds != 0 {
		t.Fatalf("unexpected first completion: %+v", first)
	}
	if first.Slowdown <= 1.005 {
		t.Fatalf("first job unaffected (%v) despite overlap", first.Slowdown)
	}
	// Full-overlap slowdown for comparison.
	both, err := proc.RunColocation(cg, []workload.App{cg}, 0, simproc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := both.TargetSeconds / base.TargetSeconds
	if first.Slowdown >= full {
		t.Fatalf("half-overlap slowdown %v not below full overlap %v", first.Slowdown, full)
	}
}

func TestSimulateOnlineNegativeArrival(t *testing.T) {
	if _, err := SimulateOnline(simproc.XeonE5649(), []BatchJob{{Name: "cg", ArrivalSeconds: -1}},
		BatchConfig{Machines: 1}); err == nil {
		t.Fatal("negative arrival accepted")
	}
}
