// Package sched builds the application the paper motivates in Sections I
// and VI: an interference-aware consolidation scheduler. Accurate
// co-location slowdown predictions let a resource manager pack
// applications onto fewer multicore processors (saving power) while
// honouring a quality-of-service bound on each application's slowdown.
//
// Two policies are provided: an interference-oblivious packer that fills
// machines by core count alone, and a greedy interference-aware packer
// that consults a trained core.Model before each placement. The package
// can then measure the *actual* slowdowns of an assignment on the
// simulator, which is how the examples and benchmarks quantify the value
// of prediction accuracy.
package sched

import (
	"fmt"
	"sort"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/simproc"
	"colocmodel/internal/workload"
)

// Assignment maps machine index → the application names placed there.
type Assignment [][]string

// MachinesUsed returns the number of non-empty machines.
func (a Assignment) MachinesUsed() int {
	n := 0
	for _, m := range a {
		if len(m) > 0 {
			n++
		}
	}
	return n
}

// JobCount returns the total number of placed jobs.
func (a Assignment) JobCount() int {
	n := 0
	for _, m := range a {
		n += len(m)
	}
	return n
}

// Oblivious packs jobs onto machines in order, interference-blind, using
// every core of a machine before opening the next. This is the server-
// consolidation default the paper's introduction describes.
func Oblivious(spec simproc.Spec, jobs []string) Assignment {
	var out Assignment
	var cur []string
	for _, j := range jobs {
		cur = append(cur, j)
		if len(cur) == spec.Cores {
			out = append(out, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// AwareConfig tunes the interference-aware packer.
type AwareConfig struct {
	// MaxSlowdown is the QoS bound: no application's predicted slowdown
	// may exceed it (e.g. 1.20 for a 20 % budget).
	MaxSlowdown float64
	// PState is the operating point of every machine.
	PState int
	// MaxMachines optionally caps the fleet; 0 = unlimited. When the cap
	// binds, jobs are placed on the machine with the smallest predicted
	// worst-case slowdown even if that violates the QoS bound.
	MaxMachines int
}

// GreedyAware packs jobs using model predictions: each job goes to the
// machine where adding it keeps every resident's predicted slowdown
// (including its own) within the QoS bound, choosing the feasible machine
// whose predicted worst slowdown after placement is smallest; if no
// machine is feasible a new one is opened.
func GreedyAware(model *core.Model, spec simproc.Spec, jobs []string, cfg AwareConfig) (Assignment, error) {
	if model == nil {
		return nil, fmt.Errorf("sched: nil model")
	}
	if cfg.MaxSlowdown <= 1 {
		return nil, fmt.Errorf("sched: QoS bound %v must exceed 1", cfg.MaxSlowdown)
	}
	for _, job := range jobs {
		if _, err := workload.ByName(job); err != nil {
			return nil, err
		}
	}
	var out Assignment
	for _, job := range jobs {
		bestIdx := -1
		bestWorst := 0.0
		for mi, resident := range out {
			if len(resident) >= spec.Cores {
				continue
			}
			worst, err := worstPredictedSlowdown(model, append(append([]string{}, resident...), job), cfg.PState)
			if err != nil {
				return nil, err
			}
			if worst <= cfg.MaxSlowdown && (bestIdx == -1 || worst < bestWorst) {
				bestIdx, bestWorst = mi, worst
			}
		}
		if bestIdx >= 0 {
			out[bestIdx] = append(out[bestIdx], job)
			continue
		}
		if cfg.MaxMachines > 0 && len(out) >= cfg.MaxMachines {
			// Fleet is capped: fall back to the least-bad machine.
			bestIdx, bestWorst = -1, 0
			for mi, resident := range out {
				if len(resident) >= spec.Cores {
					continue
				}
				worst, err := worstPredictedSlowdown(model, append(append([]string{}, resident...), job), cfg.PState)
				if err != nil {
					return nil, err
				}
				if bestIdx == -1 || worst < bestWorst {
					bestIdx, bestWorst = mi, worst
				}
			}
			if bestIdx == -1 {
				return nil, fmt.Errorf("sched: fleet capped at %d machines and all cores busy", cfg.MaxMachines)
			}
			out[bestIdx] = append(out[bestIdx], job)
			continue
		}
		out = append(out, []string{job})
	}
	return out, nil
}

// worstPredictedSlowdown predicts each resident's slowdown with the others
// as co-runners and returns the worst.
func worstPredictedSlowdown(model *core.Model, residents []string, pstate int) (float64, error) {
	worst := 0.0
	for i, target := range residents {
		co := make([]string, 0, len(residents)-1)
		co = append(co, residents[:i]...)
		co = append(co, residents[i+1:]...)
		if len(co) == 0 {
			worst = maxf(worst, 1)
			continue
		}
		sd, err := model.PredictedSlowdown(features.Scenario{Target: target, CoApps: co, PState: pstate})
		if err != nil {
			return 0, err
		}
		worst = maxf(worst, sd)
	}
	return worst, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// JobOutcome reports one job's measured behaviour under an assignment.
type JobOutcome struct {
	// Job is the application name.
	Job string
	// Machine is the machine index it ran on.
	Machine int
	// Slowdown is the measured execution time over the solo baseline.
	Slowdown float64
}

// Evaluation reports the measured quality of an assignment.
type Evaluation struct {
	// Outcomes lists every job's measured slowdown.
	Outcomes []JobOutcome
	// MachinesUsed is the number of occupied machines.
	MachinesUsed int
	// WorstSlowdown is the largest measured slowdown.
	WorstSlowdown float64
	// MeanSlowdown averages measured slowdowns.
	MeanSlowdown float64
	// Violations counts jobs whose measured slowdown exceeds the bound.
	Violations int
}

// Measure runs each machine's co-location on the simulator and returns
// the jobs' actual (simulated) slowdowns, judged against the QoS bound.
func Measure(spec simproc.Spec, asg Assignment, pstate int, qosBound float64) (*Evaluation, error) {
	proc, err := simproc.New(spec)
	if err != nil {
		return nil, err
	}
	ev := &Evaluation{MachinesUsed: asg.MachinesUsed()}
	sum := 0.0
	for mi, residents := range asg {
		if len(residents) > spec.Cores {
			return nil, fmt.Errorf("sched: machine %d has %d jobs for %d cores", mi, len(residents), spec.Cores)
		}
		for i, name := range residents {
			target, err := workload.ByName(name)
			if err != nil {
				return nil, err
			}
			var co []workload.App
			for j, other := range residents {
				if j == i {
					continue
				}
				app, err := workload.ByName(other)
				if err != nil {
					return nil, err
				}
				co = append(co, app)
			}
			base, err := proc.RunBaseline(target, pstate)
			if err != nil {
				return nil, err
			}
			run, err := proc.RunColocation(target, co, pstate, simproc.Options{})
			if err != nil {
				return nil, err
			}
			sd := run.TargetSeconds / base.TargetSeconds
			ev.Outcomes = append(ev.Outcomes, JobOutcome{Job: name, Machine: mi, Slowdown: sd})
			sum += sd
			if sd > ev.WorstSlowdown {
				ev.WorstSlowdown = sd
			}
			if sd > qosBound {
				ev.Violations++
			}
		}
	}
	if len(ev.Outcomes) > 0 {
		ev.MeanSlowdown = sum / float64(len(ev.Outcomes))
	}
	return ev, nil
}

// SortJobsByIntensity orders job names from most to least memory
// intensive (using baseline intensity at the machine's LLC), a useful
// pre-pass for greedy packing: heavy jobs placed first spread across
// machines instead of stacking.
func SortJobsByIntensity(spec simproc.Spec, jobs []string) ([]string, error) {
	type ji struct {
		name string
		mi   float64
	}
	js := make([]ji, len(jobs))
	for i, name := range jobs {
		app, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		js[i] = ji{name: name, mi: app.BaselineMemoryIntensity(spec.LLCBytes)}
	}
	sort.SliceStable(js, func(a, b int) bool { return js[a].mi > js[b].mi })
	out := make([]string, len(jobs))
	for i, j := range js {
		out[i] = j.name
	}
	return out, nil
}
