package sched

import (
	"testing"

	"colocmodel/internal/simproc"
)

// residents builds a machine occupancy from app names (only the name
// and the slot count matter to placement).
func residents(names ...string) []*batchJob {
	m := make([]*batchJob, len(names))
	for i, n := range names {
		m[i] = &batchJob{name: n}
	}
	return m
}

// TestAwareSpreadPlacementTable pins the AwareSpread placement rule at
// the decision level, deferral included: a job goes to the feasible
// machine with the smallest predicted worst slowdown; when no machine
// satisfies the QoS bound it runs alone on an idle machine if one
// exists, and only otherwise is it deferred (-1). The bound 1.0001 is
// unsatisfiable for any co-location (every predicted interference
// slowdown exceeds it) while an idle machine, at exactly 1.0, is not.
func TestAwareSpreadPlacementTable(t *testing.T) {
	model := trainedModel(t)
	spec := simproc.XeonE5649()
	full := residents("ep", "ep", "ep", "ep", "ep", "ep") // spec.Cores = 6

	cases := []struct {
		name     string
		machines [][]*batchJob
		job      string
		bound    float64
		want     int
	}{
		{
			name:     "all machines full defers",
			machines: [][]*batchJob{full, full},
			job:      "cg",
			bound:    5.0,
			want:     -1,
		},
		{
			name:     "no feasible machine and none idle defers",
			machines: [][]*batchJob{residents("cg"), residents("cg")},
			job:      "cg",
			bound:    1.0001,
			want:     -1,
		},
		{
			name:     "no feasible machine but an idle one runs the job alone",
			machines: [][]*batchJob{residents("cg"), nil},
			job:      "cg",
			bound:    1.0001,
			want:     1,
		},
		{
			name:     "all idle places on the first machine",
			machines: [][]*batchJob{nil, nil},
			job:      "cg",
			bound:    1.0001,
			want:     0,
		},
		{
			name:     "idle machine wins under a loose bound too",
			machines: [][]*batchJob{residents("ep"), nil},
			job:      "cg",
			bound:    3.0,
			want:     1,
		},
		{
			name:     "full machine is skipped even when attractive",
			machines: [][]*batchJob{full, residents("cg")},
			job:      "ep",
			bound:    5.0,
			want:     1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := BatchConfig{Policy: AwareSpread, Model: model, MaxSlowdown: tc.bound}
			got, err := placeBatch(cfg, spec, tc.machines, tc.job)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("placeBatch(%s, bound %v) = %d, want %d", tc.job, tc.bound, got, tc.want)
			}
		})
	}
}

// TestAwareSpreadDefersUntilCompletion runs the deferral through the
// simulator: on a one-machine fleet with an unsatisfiable co-location
// bound, the second job must wait for the first to finish and then run
// alone — serial execution, no violations.
func TestAwareSpreadDefersUntilCompletion(t *testing.T) {
	model := trainedModel(t)
	res, err := SimulateBatch(simproc.XeonE5649(), []string{"cg", "cg"}, BatchConfig{
		Machines: 1, Policy: AwareSpread, Model: model, MaxSlowdown: 1.0001,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("completed %d jobs, want 2", len(res.Jobs))
	}
	first, second := res.Jobs[0], res.Jobs[1]
	if second.StartSeconds < first.FinishSeconds {
		t.Fatalf("deferred job started at %.1fs, before the first finished at %.1fs",
			second.StartSeconds, first.FinishSeconds)
	}
	if res.Violations != 0 {
		t.Fatalf("%d QoS violations despite serial execution", res.Violations)
	}
	for _, j := range res.Jobs {
		if j.Slowdown > 1.01 {
			t.Fatalf("job %s ran alone but realised slowdown %.4f", j.Job, j.Slowdown)
		}
	}
}
