package sched

import (
	"fmt"

	"colocmodel/internal/core"
	"colocmodel/internal/energy"
	"colocmodel/internal/features"
	"colocmodel/internal/simproc"
)

// The paper's conclusion envisions schedulers that exploit both the
// co-location model and DVFS: "P-states are likely to change in high
// performance computing systems based on the system's need to reduce
// power or temperature", and the model's baseExTime feature is keyed on
// the P-state precisely so predictions remain valid as the governor moves
// the operating point. PStatePlan combines the predictor with the energy
// model to choose the slowest (lowest-power) P-state that still meets a
// deadline for a co-located target.

// PStateChoice reports one operating point's predicted behaviour.
type PStateChoice struct {
	// PState is the P-state index.
	PState int
	// FreqGHz is its frequency.
	FreqGHz float64
	// PredictedSeconds is the target's predicted co-located time.
	PredictedSeconds float64
	// TargetEnergyJ is the target-attributed energy at this point.
	TargetEnergyJ float64
	// MeetsDeadline reports whether PredictedSeconds ≤ the deadline.
	MeetsDeadline bool
}

// PStatePlan evaluates every P-state for the scenario and returns all
// choices plus the index (into the returned slice) of the recommended
// one: the minimum-energy choice among those meeting the deadline. If no
// P-state meets the deadline, the fastest (P0) is recommended and the
// second return value is false.
func PStatePlan(model *core.Model, spec simproc.Spec, sc features.Scenario, deadlineSeconds float64) ([]PStateChoice, int, bool, error) {
	if model == nil {
		return nil, 0, false, fmt.Errorf("sched: nil model")
	}
	if deadlineSeconds <= 0 {
		return nil, 0, false, fmt.Errorf("sched: deadline must be positive, got %v", deadlineSeconds)
	}
	est, err := energy.NewEstimator(spec)
	if err != nil {
		return nil, 0, false, err
	}
	sweep, err := energy.SweepPStates(model, est, sc)
	if err != nil {
		return nil, 0, false, err
	}
	choices := make([]PStateChoice, len(sweep))
	best := -1
	for ps, e := range sweep {
		st, err := spec.PStates.State(ps)
		if err != nil {
			return nil, 0, false, err
		}
		choices[ps] = PStateChoice{
			PState:           ps,
			FreqGHz:          st.FreqGHz,
			PredictedSeconds: e.PredictedSeconds,
			TargetEnergyJ:    e.TargetEnergyJ,
			MeetsDeadline:    e.PredictedSeconds <= deadlineSeconds,
		}
		if choices[ps].MeetsDeadline &&
			(best == -1 || choices[ps].TargetEnergyJ < choices[best].TargetEnergyJ) {
			best = ps
		}
	}
	if best == -1 {
		return choices, 0, false, nil
	}
	return choices, best, true, nil
}
