package sched

import (
	"fmt"
	"math"
	"sort"

	"colocmodel/internal/core"
	"colocmodel/internal/simproc"
	"colocmodel/internal/workload"
)

// The batch simulator realises the conclusion's vision of
// "interference-aware intelligent scheduling mechanisms": a queue of jobs
// drains onto a fleet of identical machines, and every time membership on
// a machine changes, the co-location fixed point is re-solved so each
// job's progress rate reflects its *current* neighbours. This captures
// what the static Assignment/Measure pair cannot: jobs finishing at
// different times, freed cores being refilled from the queue, and the
// interference landscape shifting continuously.

// BatchPolicy selects the placement rule.
type BatchPolicy int

const (
	// PackFirst fills the first machine with a free core (interference
	// oblivious, maximum consolidation).
	PackFirst BatchPolicy = iota
	// AwareSpread places each job on the machine whose predicted worst
	// slowdown after placement is smallest, deferring placement when no
	// machine satisfies the QoS bound (unless every machine is idle).
	AwareSpread
)

// String names the policy.
func (p BatchPolicy) String() string {
	switch p {
	case PackFirst:
		return "pack-first"
	case AwareSpread:
		return "aware-spread"
	default:
		return fmt.Sprintf("BatchPolicy(%d)", int(p))
	}
}

// BatchConfig tunes a batch simulation.
type BatchConfig struct {
	// Machines is the fleet size (identical machines).
	Machines int
	// PState is every machine's operating point.
	PState int
	// Policy selects placement.
	Policy BatchPolicy
	// Model is required for AwareSpread.
	Model *core.Model
	// MaxSlowdown is the QoS bound consulted by AwareSpread (e.g. 1.2).
	MaxSlowdown float64
}

// BatchJobResult reports one job's outcome.
type BatchJobResult struct {
	// Job is the application name.
	Job string
	// Machine is where it ran.
	Machine int
	// StartSeconds and FinishSeconds bound its execution.
	StartSeconds, FinishSeconds float64
	// Slowdown is its realised runtime over the solo baseline.
	Slowdown float64
}

// BatchResult reports a batch simulation.
type BatchResult struct {
	// Jobs holds per-job outcomes in completion order.
	Jobs []BatchJobResult
	// MakespanSeconds is when the last job finished.
	MakespanSeconds float64
	// MeanSlowdown averages realised job slowdowns.
	MeanSlowdown float64
	// WorstSlowdown is the largest realised slowdown.
	WorstSlowdown float64
	// Violations counts jobs whose realised slowdown exceeded the QoS
	// bound (informational for PackFirst).
	Violations int
	// EnergyJ integrates fleet package power over the makespan.
	EnergyJ float64
}

// batchJob is the simulator's mutable per-job state.
type batchJob struct {
	name      string
	app       workload.App
	remaining float64
	arrival   float64
	start     float64
	machine   int
	baseline  float64
}

// BatchJob is one submission to the online simulator: an application plus
// the time it arrives in the queue.
type BatchJob struct {
	// Name is the application (Table III name).
	Name string
	// ArrivalSeconds is when the job becomes available for placement.
	ArrivalSeconds float64
}

// SimulateBatch drains the job queue onto the fleet and returns per-job
// outcomes. All jobs arrive at time zero; use SimulateOnline for arrival
// times.
func SimulateBatch(spec simproc.Spec, jobs []string, cfg BatchConfig) (*BatchResult, error) {
	subs := make([]BatchJob, len(jobs))
	for i, n := range jobs {
		subs[i] = BatchJob{Name: n}
	}
	return SimulateOnline(spec, subs, cfg)
}

// SimulateOnline runs the discrete-event scheduler with job arrivals:
// placements happen only after a job's arrival time, and the simulation
// advances to whichever comes first — the next completion or the next
// arrival.
func SimulateOnline(spec simproc.Spec, jobs []BatchJob, cfg BatchConfig) (*BatchResult, error) {
	if cfg.Machines < 1 {
		return nil, fmt.Errorf("sched: batch needs at least one machine")
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("sched: batch needs jobs")
	}
	for i, j := range jobs {
		if j.ArrivalSeconds < 0 {
			return nil, fmt.Errorf("sched: job %d has negative arrival time", i)
		}
	}
	if cfg.Policy == AwareSpread {
		if cfg.Model == nil {
			return nil, fmt.Errorf("sched: AwareSpread needs a model")
		}
		if cfg.MaxSlowdown <= 1 {
			return nil, fmt.Errorf("sched: QoS bound %v must exceed 1", cfg.MaxSlowdown)
		}
	}
	proc, err := simproc.New(spec)
	if err != nil {
		return nil, err
	}
	st, err := spec.PStates.State(cfg.PState)
	if err != nil {
		return nil, err
	}

	// Queue with resolved apps and baselines, FIFO by arrival time
	// (stable for equal arrivals).
	queue := make([]*batchJob, 0, len(jobs))
	baselineCache := map[string]float64{}
	for _, sub := range jobs {
		app, err := workload.ByName(sub.Name)
		if err != nil {
			return nil, err
		}
		base, ok := baselineCache[sub.Name]
		if !ok {
			r, err := proc.RunBaseline(app, cfg.PState)
			if err != nil {
				return nil, err
			}
			base = r.TargetSeconds
			baselineCache[sub.Name] = base
		}
		queue = append(queue, &batchJob{
			name: sub.Name, app: app,
			remaining: app.Instructions,
			arrival:   sub.ArrivalSeconds,
			baseline:  base,
		})
	}
	sort.SliceStable(queue, func(a, b int) bool { return queue[a].arrival < queue[b].arrival })

	machines := make([][]*batchJob, cfg.Machines)
	res := &BatchResult{}
	now := 0.0
	corePower := st.DynamicPowerW(spec.CoreCEffW)

	admit := func() error {
		for len(queue) > 0 {
			job := queue[0]
			if job.arrival > now {
				return nil // not yet submitted
			}
			mi, err := placeBatch(cfg, spec, machines, job.name)
			if err != nil {
				return err
			}
			if mi < 0 {
				return nil // defer until something completes
			}
			job.start = now
			job.machine = mi
			machines[mi] = append(machines[mi], job)
			queue = queue[1:]
		}
		return nil
	}
	if err := admit(); err != nil {
		return nil, err
	}

	const maxSteps = 1 << 20 // safety valve; real batches need far fewer
	for step := 0; step < maxSteps; step++ {
		running := 0
		for _, m := range machines {
			running += len(m)
		}
		if running == 0 {
			if len(queue) == 0 {
				break
			}
			// Idle fleet waiting on a future arrival: jump to it.
			if queue[0].arrival > now {
				now = queue[0].arrival
				if err := admit(); err != nil {
					return nil, err
				}
				continue
			}
			return nil, fmt.Errorf("sched: %d jobs stuck in queue with idle fleet", len(queue))
		}
		// Rates per machine at current membership.
		rates := make([][]float64, cfg.Machines)
		dt := math.Inf(1)
		for mi, m := range machines {
			if len(m) == 0 {
				continue
			}
			apps := make([]workload.App, len(m))
			for j, job := range m {
				apps[j] = job.app
			}
			r, err := proc.SteadyRates(apps, cfg.PState)
			if err != nil {
				return nil, err
			}
			rates[mi] = r
			for j, job := range m {
				if r[j] <= 0 {
					return nil, fmt.Errorf("sched: job %s stalled", job.name)
				}
				if t := job.remaining / r[j]; t < dt {
					dt = t
				}
			}
		}
		// Cap the step at the next arrival so newly submitted jobs are
		// placed promptly.
		if len(queue) > 0 && queue[0].arrival > now {
			if untilArrival := queue[0].arrival - now; untilArrival < dt {
				dt = untilArrival
			}
		}
		// Advance to the next completion (or arrival).
		for mi, m := range machines {
			for j := range m {
				m[j].remaining -= rates[mi][j] * dt
			}
		}
		// Fleet energy: uncore per machine with any activity + dynamic
		// per active core.
		for _, m := range machines {
			if len(m) > 0 {
				res.EnergyJ += (spec.UncorePowerW + float64(len(m))*corePower) * dt
			}
		}
		now += dt
		// Collect completions.
		for mi, m := range machines {
			keep := m[:0]
			for _, job := range m {
				if job.remaining <= 1 { // within one instruction of done
					runtime := now - job.start
					sd := runtime / job.baseline
					res.Jobs = append(res.Jobs, BatchJobResult{
						Job: job.name, Machine: mi,
						StartSeconds: job.start, FinishSeconds: now,
						Slowdown: sd,
					})
				} else {
					keep = append(keep, job)
				}
			}
			machines[mi] = keep
		}
		if err := admit(); err != nil {
			return nil, err
		}
	}

	if len(res.Jobs) != len(jobs) {
		return nil, fmt.Errorf("sched: %d of %d jobs completed", len(res.Jobs), len(jobs))
	}
	res.MakespanSeconds = now
	sum := 0.0
	for _, j := range res.Jobs {
		sum += j.Slowdown
		if j.Slowdown > res.WorstSlowdown {
			res.WorstSlowdown = j.Slowdown
		}
		if cfg.MaxSlowdown > 1 && j.Slowdown > cfg.MaxSlowdown {
			res.Violations++
		}
	}
	res.MeanSlowdown = sum / float64(len(res.Jobs))
	sort.Slice(res.Jobs, func(a, b int) bool { return res.Jobs[a].FinishSeconds < res.Jobs[b].FinishSeconds })
	return res, nil
}

// placeBatch picks a machine index for the job, or -1 to defer.
func placeBatch(cfg BatchConfig, spec simproc.Spec, machines [][]*batchJob, job string) (int, error) {
	switch cfg.Policy {
	case PackFirst:
		for mi, m := range machines {
			if len(m) < spec.Cores {
				return mi, nil
			}
		}
		return -1, nil
	case AwareSpread:
		best, bestWorst := -1, 0.0
		idle := -1
		for mi, m := range machines {
			if len(m) >= spec.Cores {
				continue
			}
			if len(m) == 0 && idle < 0 {
				idle = mi
			}
			residents := make([]string, 0, len(m)+1)
			for _, r := range m {
				residents = append(residents, r.name)
			}
			residents = append(residents, job)
			worst, err := worstPredictedSlowdown(cfg.Model, residents, cfg.PState)
			if err != nil {
				return 0, err
			}
			if worst <= cfg.MaxSlowdown && (best < 0 || worst < bestWorst) {
				best, bestWorst = mi, worst
			}
		}
		if best >= 0 {
			return best, nil
		}
		// No machine satisfies the bound: run alone on an idle machine if
		// one exists (slowdown 1), otherwise defer.
		return idle, nil
	default:
		return 0, fmt.Errorf("sched: unknown policy %d", int(cfg.Policy))
	}
}
