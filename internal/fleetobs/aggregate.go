package fleetobs

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Target is one backend to scrape.
type Target struct {
	// Name labels the backend in merged output.
	Name string
	// MetricsURL is the backend's /metrics endpoint.
	MetricsURL string
}

// BackendScrape is the per-backend outcome of one fleet scrape.
type BackendScrape struct {
	Name string
	// Err is set when the scrape failed; Doc is nil then.
	Err error
	Doc *Doc
	// Requests and Errors sum the backend's request/error counters
	// across endpoints at scrape time.
	Requests, Errors float64
	// DeltaRequests/DeltaErrors are the increments since this
	// aggregator's previous successful scrape of the same backend
	// (zero on the first scrape or after a counter reset).
	DeltaRequests, DeltaErrors float64
	// ErrorRate is DeltaErrors/DeltaRequests — the error rate of the
	// traffic between the two scrapes, not the lifetime average.
	ErrorRate float64
}

// FleetScrape is one aggregated scrape of the whole fleet.
type FleetScrape struct {
	Merged   *Doc
	Backends []BackendScrape
}

// Aggregator scrapes a fleet of backends concurrently and merges the
// results, keeping per-backend counter state across scrapes so error
// rates can be reported as deltas.
type Aggregator struct {
	// Client issues the scrapes; http.DefaultClient when nil.
	Client *http.Client
	// Timeout bounds each fleet scrape (default 2s).
	Timeout time.Duration
	// RequestCounter/ErrorCounter name the per-backend counter families
	// the delta error rate is derived from. Defaults are the coloserve
	// request counters.
	RequestCounter, ErrorCounter string

	mu   sync.Mutex
	prev map[string][2]float64 // backend -> {requests, errors} at last scrape
}

func (a *Aggregator) counters() (string, string) {
	req, errc := a.RequestCounter, a.ErrorCounter
	if req == "" {
		req = "coloserve_requests_total"
	}
	if errc == "" {
		errc = "coloserve_request_errors_total"
	}
	return req, errc
}

// Scrape fetches and parses every target's metrics concurrently, then
// merges the successful scrapes. Failed backends appear in Backends
// with Err set and contribute nothing to the merged document.
func (a *Aggregator) Scrape(ctx context.Context, targets []Target) *FleetScrape {
	timeout := a.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	out := &FleetScrape{Backends: make([]BackendScrape, len(targets))}
	var wg sync.WaitGroup
	for i, tgt := range targets {
		wg.Add(1)
		go func(i int, tgt Target) {
			defer wg.Done()
			bs := &out.Backends[i]
			bs.Name = tgt.Name
			bs.Doc, bs.Err = a.scrapeOne(ctx, tgt.MetricsURL)
		}(i, tgt)
	}
	wg.Wait()

	reqName, errName := a.counters()
	names := make([]string, len(targets))
	docs := make([]*Doc, len(targets))
	a.mu.Lock()
	if a.prev == nil {
		a.prev = make(map[string][2]float64)
	}
	for i := range out.Backends {
		bs := &out.Backends[i]
		names[i] = bs.Name
		docs[i] = bs.Doc
		if bs.Doc == nil {
			continue
		}
		bs.Requests, _ = bs.Doc.SumSamples(reqName, reqName)
		bs.Errors, _ = bs.Doc.SumSamples(errName, errName)
		if prev, ok := a.prev[bs.Name]; ok && bs.Requests >= prev[0] && bs.Errors >= prev[1] {
			bs.DeltaRequests = bs.Requests - prev[0]
			bs.DeltaErrors = bs.Errors - prev[1]
			if bs.DeltaRequests > 0 {
				bs.ErrorRate = bs.DeltaErrors / bs.DeltaRequests
			}
		}
		a.prev[bs.Name] = [2]float64{bs.Requests, bs.Errors}
	}
	a.mu.Unlock()
	out.Merged = Merge(names, docs)
	return out
}

func (a *Aggregator) scrapeOne(ctx context.Context, url string) (*Doc, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	client := a.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleetobs: scrape %s: status %d", url, resp.StatusCode)
	}
	return Parse(io.LimitReader(resp.Body, 8<<20))
}
