package fleetobs

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// fakeMetricsServer serves a coloserve-shaped scrape whose counters are
// settable between scrapes.
type fakeMetricsServer struct {
	requests, errors atomic.Uint64
	srv              *httptest.Server
}

func newFakeMetricsServer(t *testing.T) *fakeMetricsServer {
	f := &fakeMetricsServer{}
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		text := renderBackend(f.requests.Load(), f.errors.Load(), []uint64{1, 0, 0, 0, 0}, 0.001)
		w.Write([]byte(text))
	}))
	t.Cleanup(f.srv.Close)
	return f
}

func TestAggregatorScrapeAndDeltas(t *testing.T) {
	b0, b1 := newFakeMetricsServer(t), newFakeMetricsServer(t)
	b0.requests.Store(100)
	b0.errors.Store(2)
	b1.requests.Store(50)
	b1.errors.Store(0)

	agg := &Aggregator{}
	targets := []Target{
		{Name: "b0", MetricsURL: b0.srv.URL},
		{Name: "b1", MetricsURL: b1.srv.URL},
	}
	fs := agg.Scrape(context.Background(), targets)
	if got, _ := fs.Merged.SumSamples("coloserve_requests_total", "coloserve_requests_total"); got != 150 {
		t.Fatalf("merged requests %v, want 150", got)
	}
	// First scrape: no previous state, deltas zero.
	if fs.Backends[0].DeltaRequests != 0 || fs.Backends[0].ErrorRate != 0 {
		t.Fatalf("first scrape should have zero deltas: %+v", fs.Backends[0])
	}
	if fs.Backends[0].Requests != 100 || fs.Backends[0].Errors != 2 {
		t.Fatalf("absolute counters wrong: %+v", fs.Backends[0])
	}

	// 40 more requests on b0, 10 of them errors: delta error rate 0.25.
	b0.requests.Store(140)
	b0.errors.Store(12)
	fs = agg.Scrape(context.Background(), targets)
	bs := fs.Backends[0]
	if bs.DeltaRequests != 40 || bs.DeltaErrors != 10 || bs.ErrorRate != 0.25 {
		t.Fatalf("delta error rate wrong: %+v", bs)
	}
	if fs.Backends[1].DeltaRequests != 0 {
		t.Fatalf("idle backend should have zero delta: %+v", fs.Backends[1])
	}
}

func TestAggregatorSurvivesDownBackend(t *testing.T) {
	up := newFakeMetricsServer(t)
	up.requests.Store(7)
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusInternalServerError)
	}))
	defer down.Close()

	agg := &Aggregator{}
	fs := agg.Scrape(context.Background(), []Target{
		{Name: "up", MetricsURL: up.srv.URL},
		{Name: "down", MetricsURL: down.URL},
		{Name: "gone", MetricsURL: "http://127.0.0.1:1/metrics"},
	})
	if fs.Backends[1].Err == nil || fs.Backends[2].Err == nil {
		t.Fatal("failed scrapes must carry errors")
	}
	if fs.Backends[0].Err != nil {
		t.Fatalf("healthy scrape failed: %v", fs.Backends[0].Err)
	}
	if got, _ := fs.Merged.SumSamples("coloserve_requests_total", "coloserve_requests_total"); got != 7 {
		t.Fatalf("merged should include only the healthy backend: %v", got)
	}
}
