// Package fleetobs aggregates observability across a serving fleet: it
// parses Prometheus text-exposition scrapes from individual backends
// and merges them into one fleet-wide document the router serves at
// GET /v1/fleet/metrics.
//
// Merge semantics follow metric type: counter, histogram and summary
// samples with identical label sets are summed across backends (bucket
// counts, sums and counts of a log-bucketed histogram sum exactly, so
// the merged histogram is the histogram of the union of observations);
// gauge and untyped samples are level signals that would be meaningless
// summed (a burn rate, an in-flight count), so they are re-emitted
// per backend with a `backend` label. Everything is stdlib-only.
package fleetobs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Label is one metric label pair.
type Label struct {
	Key, Value string
}

// Sample is one exposition line: a metric name (which for histograms
// and summaries carries a _bucket/_sum/_count suffix), its labels, and
// the value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// key identifies a sample within a family for merging: full line name
// plus the canonical (sorted) label signature.
func (s *Sample) key() string {
	ls := make([]string, len(s.Labels))
	for i, l := range s.Labels {
		ls[i] = l.Key + "\x00" + l.Value
	}
	sort.Strings(ls)
	return s.Name + "\x01" + strings.Join(ls, "\x02")
}

// Family groups the samples of one metric with its HELP and TYPE
// metadata. Type is "counter", "gauge", "histogram", "summary" or
// "untyped".
type Family struct {
	Name, Help, Type string
	Samples          []*Sample
}

// Doc is one parsed exposition document, families in input order.
type Doc struct {
	Families []*Family
	byName   map[string]*Family
}

func newDoc() *Doc { return &Doc{byName: make(map[string]*Family)} }

func (d *Doc) family(name string) *Family {
	if f, ok := d.byName[name]; ok {
		return f
	}
	f := &Family{Name: name, Type: "untyped"}
	d.byName[name] = f
	d.Families = append(d.Families, f)
	return f
}

// familyOf maps a sample line name to its owning family name: histogram
// and summary series append _bucket/_sum/_count to the declared name.
func (d *Doc) familyOf(line string) *Family {
	if f, ok := d.byName[line]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(line, suffix)
		if !ok {
			continue
		}
		if f, ok := d.byName[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
			return f
		}
	}
	return d.family(line)
}

// Parse reads one Prometheus text-exposition (0.0.4) document.
// Timestamps are not supported (our emitters never write them) and
// unparseable lines are an error: a scrape is either trusted or
// rejected whole.
func Parse(r io.Reader) (*Doc, error) {
	d := newDoc()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := line[len("# HELP "):]
			name, help, _ := strings.Cut(rest, " ")
			if name == "" {
				return nil, fmt.Errorf("fleetobs: line %d: HELP without metric name", lineNo)
			}
			d.family(name).Help = help
		case strings.HasPrefix(line, "# TYPE "):
			rest := line[len("# TYPE "):]
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("fleetobs: line %d: malformed TYPE line", lineNo)
			}
			d.family(name).Type = strings.TrimSpace(typ)
		case strings.HasPrefix(line, "#"):
			continue // comment
		default:
			s, err := parseSample(line)
			if err != nil {
				return nil, fmt.Errorf("fleetobs: line %d: %w", lineNo, err)
			}
			f := d.familyOf(s.Name)
			f.Samples = append(f.Samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

func parseSample(line string) (*Sample, error) {
	s := &Sample{}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return nil, fmt.Errorf("sample %q has no value", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" {
		return nil, fmt.Errorf("sample %q has no name", line)
	}
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return nil, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return nil, fmt.Errorf("sample %q: want exactly one value, no timestamp", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return nil, fmt.Errorf("sample %q: bad value: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a `{k="v",...}` block starting at s[0]=='{' and
// returns the index just past the closing brace. Values use Go-style
// escapes (\\, \", \n), which covers what %q emits.
func parseLabels(s string) (end int, labels []Label, err error) {
	i := 1
	for {
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, nil, fmt.Errorf("labels %q: missing '='", s)
		}
		key := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("labels %q: unquoted value", s)
		}
		j := i + 1
		var val strings.Builder
		for {
			if j >= len(s) {
				return 0, nil, fmt.Errorf("labels %q: unterminated value", s)
			}
			c := s[j]
			if c == '\\' {
				if j+1 >= len(s) {
					return 0, nil, fmt.Errorf("labels %q: dangling escape", s)
				}
				switch s[j+1] {
				case 'n':
					val.WriteByte('\n')
				case 't':
					val.WriteByte('\t')
				default:
					val.WriteByte(s[j+1])
				}
				j += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			j++
		}
		labels = append(labels, Label{Key: key, Value: val.String()})
		i = j + 1
	}
}

// summable reports whether a family's samples add meaningfully across
// backends.
func (f *Family) summable() bool {
	switch f.Type {
	case "counter", "histogram", "summary":
		return true
	}
	return false
}

// Merge folds per-backend scrape documents into one fleet document.
// backends[i] names docs[i] (used to label non-summable samples); nil
// docs (failed scrapes) are skipped. Family order follows the first
// document that mentions each family; sample order within a family is
// first-seen across backends in input order, which is deterministic for
// a fleet of identical servers.
func Merge(backends []string, docs []*Doc) *Doc {
	out := newDoc()
	sums := make(map[string]*Sample)
	for bi, doc := range docs {
		if doc == nil {
			continue
		}
		name := ""
		if bi < len(backends) {
			name = backends[bi]
		}
		for _, f := range doc.Families {
			of := out.family(f.Name)
			if of.Help == "" {
				of.Help = f.Help
			}
			if of.Type == "untyped" && f.Type != "" {
				of.Type = f.Type
			}
			for _, s := range f.Samples {
				if f.summable() {
					k := f.Name + "\x03" + s.key()
					if agg, ok := sums[k]; ok {
						agg.Value += s.Value
						continue
					}
					cp := &Sample{Name: s.Name, Labels: append([]Label(nil), s.Labels...), Value: s.Value}
					sums[k] = cp
					of.Samples = append(of.Samples, cp)
				} else {
					cp := &Sample{
						Name:   s.Name,
						Labels: append([]Label{{Key: "backend", Value: name}}, s.Labels...),
						Value:  s.Value,
					}
					of.Samples = append(of.Samples, cp)
				}
			}
		}
	}
	return out
}

// Write renders the document in the text exposition format.
func (d *Doc) Write(w io.Writer) {
	for _, f := range d.Families {
		if len(f.Samples) == 0 {
			continue
		}
		if f.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Samples {
			if len(s.Labels) == 0 {
				fmt.Fprintf(w, "%s %s\n", s.Name, formatValue(s.Value))
				continue
			}
			fmt.Fprintf(w, "%s{", s.Name)
			for i, l := range s.Labels {
				if i > 0 {
					io.WriteString(w, ",")
				}
				fmt.Fprintf(w, "%s=%q", l.Key, l.Value)
			}
			fmt.Fprintf(w, "} %s\n", formatValue(s.Value))
		}
	}
}

// SumSamples adds every sample value of the named family whose line
// name matches lineName and whose labels include the given pairs (an
// empty filter matches all). Convenience for callers deriving scalars
// (e.g. total fleet requests) from a parsed doc.
func (d *Doc) SumSamples(family, lineName string, filter ...Label) (total float64, n int) {
	f, ok := d.byName[family]
	if !ok {
		return 0, 0
	}
	for _, s := range f.Samples {
		if lineName != "" && s.Name != lineName {
			continue
		}
		if !hasLabels(s.Labels, filter) {
			continue
		}
		total += s.Value
		n++
	}
	return total, n
}

func hasLabels(have, want []Label) bool {
	for _, w := range want {
		found := false
		for _, h := range have {
			if h == w {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func formatValue(v float64) string {
	// Counters are integral in practice; keep them integer-rendered so
	// merged output matches what single-backend emitters write.
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
