package fleetobs

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func parseDoc(t *testing.T, text string) *Doc {
	t.Helper()
	d, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, text)
	}
	return d
}

func TestParseBasics(t *testing.T) {
	d := parseDoc(t, `
# HELP coloserve_requests_total Requests received per endpoint.
# TYPE coloserve_requests_total counter
coloserve_requests_total{endpoint="predict"} 10
coloserve_requests_total{endpoint="predict_batch"} 3
# TYPE coloserve_in_flight_requests gauge
coloserve_in_flight_requests 2
# some free-form comment
coloserve_unlisted 1.5
`)
	f := d.byName["coloserve_requests_total"]
	if f == nil || f.Type != "counter" || len(f.Samples) != 2 {
		t.Fatalf("counter family wrong: %+v", f)
	}
	if f.Samples[0].Labels[0] != (Label{Key: "endpoint", Value: "predict"}) {
		t.Fatalf("labels wrong: %+v", f.Samples[0].Labels)
	}
	if g := d.byName["coloserve_in_flight_requests"]; g == nil || g.Type != "gauge" || g.Samples[0].Value != 2 {
		t.Fatalf("gauge family wrong: %+v", g)
	}
	if u := d.byName["coloserve_unlisted"]; u == nil || u.Type != "untyped" || u.Samples[0].Value != 1.5 {
		t.Fatalf("untyped family wrong: %+v", u)
	}
	total, n := d.SumSamples("coloserve_requests_total", "coloserve_requests_total")
	if total != 13 || n != 2 {
		t.Fatalf("SumSamples = %v/%d, want 13/2", total, n)
	}
}

func TestParseHistogramSeriesJoinFamily(t *testing.T) {
	d := parseDoc(t, `
# TYPE coloserve_request_duration_seconds histogram
coloserve_request_duration_seconds_bucket{endpoint="predict",le="0.1"} 4
coloserve_request_duration_seconds_bucket{endpoint="predict",le="+Inf"} 5
coloserve_request_duration_seconds_sum{endpoint="predict"} 0.25
coloserve_request_duration_seconds_count{endpoint="predict"} 5
`)
	f := d.byName["coloserve_request_duration_seconds"]
	if f == nil || len(f.Samples) != 4 {
		t.Fatalf("histogram series not joined under base family: %+v", d.Families)
	}
	if len(d.Families) != 1 {
		t.Fatalf("histogram series leaked into %d families", len(d.Families))
	}
}

func TestParseEscapedLabelValues(t *testing.T) {
	d := parseDoc(t, "m{k=\"a\\\"b\\\\c\\nd\"} 1\n")
	got := d.Families[0].Samples[0].Labels[0].Value
	if got != "a\"b\\c\nd" {
		t.Fatalf("escape handling wrong: %q", got)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, text := range []string{
		"metric_without_value\n",
		"m{k=unquoted} 1\n",
		"m{k=\"v\" 1\n",
		"m 1 1699999999\n", // timestamps unsupported
		"m notanumber\n",
	} {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("Parse accepted %q", text)
		}
	}
}

// renderBackend builds a synthetic coloserve-shaped scrape with a
// cumulative histogram from raw bucket increments.
func renderBackend(requests, errs uint64, incr []uint64, sum float64) string {
	bounds := []string{"0.001", "0.01", "0.1", "1"}
	var sb strings.Builder
	sb.WriteString("# HELP coloserve_requests_total Requests received per endpoint.\n")
	sb.WriteString("# TYPE coloserve_requests_total counter\n")
	fmt.Fprintf(&sb, "coloserve_requests_total{endpoint=\"predict\"} %d\n", requests)
	sb.WriteString("# TYPE coloserve_request_errors_total counter\n")
	fmt.Fprintf(&sb, "coloserve_request_errors_total{endpoint=\"predict\"} %d\n", errs)
	sb.WriteString("# TYPE coloserve_request_duration_seconds histogram\n")
	cum := uint64(0)
	for i, b := range bounds {
		cum += incr[i]
		fmt.Fprintf(&sb, "coloserve_request_duration_seconds_bucket{endpoint=\"predict\",le=%q} %d\n", b, cum)
	}
	cum += incr[len(bounds)]
	fmt.Fprintf(&sb, "coloserve_request_duration_seconds_bucket{endpoint=\"predict\",le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(&sb, "coloserve_request_duration_seconds_sum{endpoint=\"predict\"} %g\n", sum)
	fmt.Fprintf(&sb, "coloserve_request_duration_seconds_count{endpoint=\"predict\"} %d\n", cum)
	sb.WriteString("# TYPE coloserve_in_flight_requests gauge\n")
	fmt.Fprintf(&sb, "coloserve_in_flight_requests %d\n", requests%7)
	return sb.String()
}

// TestMergeHistogramProperty is the acceptance property test: for many
// seeded random fleets, every merged histogram bucket, sum and count
// equals the arithmetic sum of the per-backend values, and the merged
// histogram stays cumulative-monotone with +Inf == _count.
func TestMergeHistogramProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 200; round++ {
		k := 1 + rng.Intn(5)
		names := make([]string, k)
		docs := make([]*Doc, k)
		var wantBuckets [5]uint64
		var wantReq, wantErr uint64
		var wantSum float64
		for b := 0; b < k; b++ {
			names[b] = fmt.Sprintf("b%d", b)
			var incr [5]uint64
			for i := range incr {
				incr[i] = uint64(rng.Intn(100))
				wantBuckets[i] += incr[i]
			}
			req := uint64(rng.Intn(1000))
			errs := uint64(rng.Intn(int(req + 1)))
			sum := float64(rng.Intn(10000)) / 100
			wantReq += req
			wantErr += errs
			wantSum += sum
			docs[b] = parseDoc(t, renderBackend(req, errs, incr[:], sum))
		}
		m := Merge(names, docs)

		if got, _ := m.SumSamples("coloserve_requests_total", "coloserve_requests_total"); got != float64(wantReq) {
			t.Fatalf("round %d: merged requests %v, want %d", round, got, wantReq)
		}
		if got, _ := m.SumSamples("coloserve_request_errors_total", "coloserve_request_errors_total"); got != float64(wantErr) {
			t.Fatalf("round %d: merged errors %v, want %d", round, got, wantErr)
		}

		hf := m.byName["coloserve_request_duration_seconds"]
		if hf == nil {
			t.Fatalf("round %d: merged histogram missing", round)
		}
		bounds := []string{"0.001", "0.01", "0.1", "1", "+Inf"}
		var prev float64 = -1
		var cum uint64
		for i, b := range bounds {
			cum += wantBuckets[i]
			got, n := m.SumSamples("coloserve_request_duration_seconds",
				"coloserve_request_duration_seconds_bucket", Label{Key: "le", Value: b})
			if n != 1 {
				t.Fatalf("round %d: le=%q merged into %d samples", round, b, n)
			}
			if got != float64(cum) {
				t.Fatalf("round %d: bucket le=%q = %v, want %d", round, b, got, cum)
			}
			if got < prev {
				t.Fatalf("round %d: merged buckets not monotone at le=%q", round, b)
			}
			prev = got
		}
		gotSum, _ := m.SumSamples("coloserve_request_duration_seconds", "coloserve_request_duration_seconds_sum")
		if math.Abs(gotSum-wantSum) > 1e-6 {
			t.Fatalf("round %d: merged sum %v, want %v", round, gotSum, wantSum)
		}
		gotCount, _ := m.SumSamples("coloserve_request_duration_seconds", "coloserve_request_duration_seconds_count")
		if gotCount != prev {
			t.Fatalf("round %d: +Inf bucket %v != _count %v", round, prev, gotCount)
		}

		// Gauges must not be summed: one labelled sample per backend.
		gf := m.byName["coloserve_in_flight_requests"]
		if gf == nil || len(gf.Samples) != k {
			t.Fatalf("round %d: gauge not per-backend: %+v", round, gf)
		}
		for i, s := range gf.Samples {
			if s.Labels[0].Key != "backend" || s.Labels[0].Value != names[i] {
				t.Fatalf("round %d: gauge sample missing backend label: %+v", round, s)
			}
		}
	}
}

func TestMergeSkipsNilDocsAndRoundTrips(t *testing.T) {
	d0 := parseDoc(t, renderBackend(10, 1, []uint64{1, 2, 3, 4, 5}, 1.5))
	m := Merge([]string{"up", "down"}, []*Doc{d0, nil})
	var sb strings.Builder
	m.Write(&sb)
	// The rendered merge must itself parse (round trip through the
	// exposition format).
	back := parseDoc(t, sb.String())
	if got, _ := back.SumSamples("coloserve_requests_total", "coloserve_requests_total"); got != 10 {
		t.Fatalf("round-tripped requests = %v", got)
	}
	if !strings.Contains(sb.String(), `coloserve_in_flight_requests{backend="up"}`) {
		t.Fatalf("gauge lost backend label:\n%s", sb.String())
	}
}
