// Package perfctr is the performance-counter access layer of the testing
// environment (Section IV-A2 of the paper). It mirrors the PAPI preset
// model: a portable set of named hardware events that a profiler attaches
// to an application, reads once at completion, and turns into derived
// metrics. The backing "hardware" here is the multicore processor
// simulator, which exposes the same three events the paper's methodology
// consumes — total instructions, last-level cache misses, and last-level
// cache accesses — plus cycles for CPI bookkeeping.
//
// As in the paper, counter values carry no temporal information: they are
// totals over a run, so every derived metric is an average across time.
package perfctr

import (
	"fmt"
	"sort"
)

// Event identifies a hardware event, in the spirit of PAPI presets.
type Event string

// The preset events used by the methodology. Names follow PAPI.
const (
	// TotIns counts completed instructions (PAPI_TOT_INS).
	TotIns Event = "PAPI_TOT_INS"
	// TotCyc counts core clock cycles (PAPI_TOT_CYC).
	TotCyc Event = "PAPI_TOT_CYC"
	// L3TCM counts last-level (here L3) total cache misses (PAPI_L3_TCM).
	// On architectures whose last level is L2 the same preset maps there;
	// the methodology is last-level-relative (Section IV-A3).
	L3TCM Event = "PAPI_L3_TCM"
	// L3TCA counts last-level total cache accesses (PAPI_L3_TCA).
	L3TCA Event = "PAPI_L3_TCA"
)

// AllPresets lists every preset this backend supports, sorted.
func AllPresets() []Event {
	evs := []Event{TotIns, TotCyc, L3TCM, L3TCA}
	sort.Slice(evs, func(i, j int) bool { return evs[i] < evs[j] })
	return evs
}

// Backend is implemented by hardware (here: the simulator) that can report
// event totals for one measured application context.
type Backend interface {
	// CounterValue returns the running total for ev, or an error if the
	// event is not supported.
	CounterValue(ev Event) (uint64, error)
}

// EventSet accumulates a selected group of events read from a backend,
// following PAPI's create/add/start/stop lifecycle.
type EventSet struct {
	events  []Event
	started bool
	start   map[Event]uint64
	values  map[Event]uint64
	backend Backend
}

// NewEventSet returns an empty event set bound to a backend.
func NewEventSet(b Backend) (*EventSet, error) {
	if b == nil {
		return nil, fmt.Errorf("perfctr: nil backend")
	}
	return &EventSet{
		backend: b,
		start:   make(map[Event]uint64),
		values:  make(map[Event]uint64),
	}, nil
}

// Add registers an event for collection. Adding while started or adding a
// duplicate is an error, matching PAPI semantics.
func (es *EventSet) Add(ev Event) error {
	if es.started {
		return fmt.Errorf("perfctr: cannot add %s to a started set", ev)
	}
	for _, e := range es.events {
		if e == ev {
			return fmt.Errorf("perfctr: event %s already in set", ev)
		}
	}
	if _, err := es.backend.CounterValue(ev); err != nil {
		return fmt.Errorf("perfctr: backend does not support %s: %w", ev, err)
	}
	es.events = append(es.events, ev)
	return nil
}

// Start snapshots current totals so a later Stop yields deltas.
func (es *EventSet) Start() error {
	if es.started {
		return fmt.Errorf("perfctr: set already started")
	}
	if len(es.events) == 0 {
		return fmt.Errorf("perfctr: empty event set")
	}
	for _, ev := range es.events {
		v, err := es.backend.CounterValue(ev)
		if err != nil {
			return err
		}
		es.start[ev] = v
	}
	es.started = true
	return nil
}

// Stop reads final totals and stores the per-event deltas.
func (es *EventSet) Stop() error {
	if !es.started {
		return fmt.Errorf("perfctr: set not started")
	}
	for _, ev := range es.events {
		v, err := es.backend.CounterValue(ev)
		if err != nil {
			return err
		}
		es.values[ev] = v - es.start[ev]
	}
	es.started = false
	return nil
}

// Value returns the delta measured for ev by the last Start/Stop pair.
func (es *EventSet) Value(ev Event) (uint64, error) {
	v, ok := es.values[ev]
	if !ok {
		return 0, fmt.Errorf("perfctr: no measurement for %s", ev)
	}
	return v, nil
}

// Counts is a plain snapshot of the three methodology events plus cycles.
type Counts struct {
	Instructions uint64
	Cycles       uint64
	LLCMisses    uint64
	LLCAccesses  uint64
}

// Collect runs one Start/measure/Stop cycle around fn using a fresh event
// set with all presets, returning the deltas. This is the equivalent of
// wrapping an application in HPCToolkit's hpcrun-flat profiler.
func Collect(b Backend, fn func() error) (Counts, error) {
	es, err := NewEventSet(b)
	if err != nil {
		return Counts{}, err
	}
	for _, ev := range []Event{TotIns, TotCyc, L3TCM, L3TCA} {
		if err := es.Add(ev); err != nil {
			return Counts{}, err
		}
	}
	if err := es.Start(); err != nil {
		return Counts{}, err
	}
	if err := fn(); err != nil {
		return Counts{}, err
	}
	if err := es.Stop(); err != nil {
		return Counts{}, err
	}
	var c Counts
	if c.Instructions, err = es.Value(TotIns); err != nil {
		return Counts{}, err
	}
	if c.Cycles, err = es.Value(TotCyc); err != nil {
		return Counts{}, err
	}
	if c.LLCMisses, err = es.Value(L3TCM); err != nil {
		return Counts{}, err
	}
	if c.LLCAccesses, err = es.Value(L3TCA); err != nil {
		return Counts{}, err
	}
	return c, nil
}

// MemoryIntensity returns LLC misses per instruction, the paper's central
// derived metric (Section IV-A3): the rate at which the application must
// go to main memory.
func (c Counts) MemoryIntensity() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.LLCMisses) / float64(c.Instructions)
}

// CMPerCA returns LLC misses per LLC access (targetCM/CA of Table I).
func (c Counts) CMPerCA() float64 {
	if c.LLCAccesses == 0 {
		return 0
	}
	return float64(c.LLCMisses) / float64(c.LLCAccesses)
}

// CAPerIns returns LLC accesses per instruction (targetCA/INS of Table I).
func (c Counts) CAPerIns() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.LLCAccesses) / float64(c.Instructions)
}

// CPI returns cycles per instruction.
func (c Counts) CPI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.Cycles) / float64(c.Instructions)
}
