package perfctr

import (
	"errors"
	"testing"
)

// fakeBackend is a settable counter backend for tests.
type fakeBackend struct {
	vals map[Event]uint64
}

func newFake() *fakeBackend {
	return &fakeBackend{vals: map[Event]uint64{TotIns: 0, TotCyc: 0, L3TCM: 0, L3TCA: 0}}
}

func (f *fakeBackend) CounterValue(ev Event) (uint64, error) {
	v, ok := f.vals[ev]
	if !ok {
		return 0, errors.New("unsupported event")
	}
	return v, nil
}

func TestAllPresetsSorted(t *testing.T) {
	ps := AllPresets()
	if len(ps) != 4 {
		t.Fatalf("presets = %v", ps)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] < ps[i-1] {
			t.Fatal("presets not sorted")
		}
	}
}

func TestEventSetLifecycle(t *testing.T) {
	f := newFake()
	es, err := NewEventSet(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := es.Add(TotIns); err != nil {
		t.Fatal(err)
	}
	if err := es.Add(TotIns); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if err := es.Add(Event("PAPI_FAKE")); err == nil {
		t.Fatal("unsupported event accepted")
	}
	f.vals[TotIns] = 100
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if err := es.Add(TotCyc); err == nil {
		t.Fatal("add while started accepted")
	}
	if err := es.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	f.vals[TotIns] = 350
	if err := es.Stop(); err != nil {
		t.Fatal(err)
	}
	v, err := es.Value(TotIns)
	if err != nil || v != 250 {
		t.Fatalf("delta = %d err=%v, want 250", v, err)
	}
	if _, err := es.Value(TotCyc); err == nil {
		t.Fatal("unmeasured event read accepted")
	}
}

func TestEventSetErrors(t *testing.T) {
	if _, err := NewEventSet(nil); err == nil {
		t.Fatal("nil backend accepted")
	}
	f := newFake()
	es, _ := NewEventSet(f)
	if err := es.Start(); err == nil {
		t.Fatal("start of empty set accepted")
	}
	if err := es.Stop(); err == nil {
		t.Fatal("stop of unstarted set accepted")
	}
}

func TestCollect(t *testing.T) {
	f := newFake()
	c, err := Collect(f, func() error {
		f.vals[TotIns] = 1000
		f.vals[TotCyc] = 2000
		f.vals[L3TCM] = 10
		f.vals[L3TCA] = 50
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Instructions != 1000 || c.Cycles != 2000 || c.LLCMisses != 10 || c.LLCAccesses != 50 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestCollectPropagatesError(t *testing.T) {
	f := newFake()
	want := errors.New("boom")
	if _, err := Collect(f, func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
}

func TestDerivedMetrics(t *testing.T) {
	c := Counts{Instructions: 1000, Cycles: 1500, LLCMisses: 20, LLCAccesses: 100}
	if c.MemoryIntensity() != 0.02 {
		t.Fatalf("memory intensity %v", c.MemoryIntensity())
	}
	if c.CMPerCA() != 0.2 {
		t.Fatalf("CM/CA %v", c.CMPerCA())
	}
	if c.CAPerIns() != 0.1 {
		t.Fatalf("CA/INS %v", c.CAPerIns())
	}
	if c.CPI() != 1.5 {
		t.Fatalf("CPI %v", c.CPI())
	}
}

func TestDerivedMetricsZeroSafe(t *testing.T) {
	var c Counts
	if c.MemoryIntensity() != 0 || c.CMPerCA() != 0 || c.CAPerIns() != 0 || c.CPI() != 0 {
		t.Fatal("zero counts produced non-zero ratios")
	}
}
