// Package drift watches the stream of prediction residuals for
// evidence that a deployed model no longer matches its workload. The
// paper's models are trained once on an offline homogeneous sweep
// (Table V) and Section IV-B3 concedes their accuracy depends on
// deployment resembling that sweep; when the workload mix shifts, the
// signed percent error of predictions drifts away from zero and this
// package is what notices.
//
// Two layers per (model × target) stream:
//
//   - Welford running moments of the signed percent error — mean,
//     standard deviation, mean absolute error — numerically stable in
//     one pass, O(1) memory per stream.
//   - A two-sided Page–Hinkley detector: cumulative deviation of the
//     residual from its own running mean, beyond a tolerance δ, with
//     the running extremum subtracted. The score rises persistently
//     only under a sustained shift (not isolated noise) and trips when
//     it exceeds λ.
//
// Trips are sticky per stream until Reset (typically after a model
// promotion makes old residuals meaningless).
package drift

import (
	"math"
	"sort"
	"sync"
)

// Config tunes the detector.
type Config struct {
	// Delta is the Page–Hinkley tolerance in percent-error units:
	// deviations from the running mean smaller than Delta do not
	// accumulate. Default 2 (two percentage points).
	Delta float64
	// Lambda is the trip threshold on the cumulative score. Default 50.
	Lambda float64
	// MinSamples is the number of residuals a stream needs before it
	// may trip, so a cold stream cannot fire on its first few
	// observations. Default 30.
	MinSamples int
}

func (c *Config) defaults() {
	if c.Delta == 0 {
		c.Delta = 2
	}
	if c.Lambda == 0 {
		c.Lambda = 50
	}
	if c.MinSamples == 0 {
		c.MinSamples = 30
	}
}

// key identifies one residual stream.
type key struct{ model, target string }

// cell is the per-stream state: Welford moments plus the two-sided
// Page–Hinkley accumulators.
type cell struct {
	count      int
	mean, m2   float64 // Welford on signed percent error
	meanAbs    float64
	mUp, minUp float64 // upward accumulator and its running minimum
	mDn, maxDn float64 // downward accumulator and its running maximum
	tripped    bool
}

// observe folds one residual into the stream and reports whether this
// observation transitioned the stream into the tripped state.
func (c *cell) observe(x, delta, lambda float64, minSamples int) bool {
	c.count++
	d := x - c.mean
	c.mean += d / float64(c.count)
	c.m2 += d * (x - c.mean)
	c.meanAbs += (math.Abs(x) - c.meanAbs) / float64(c.count)

	// Page–Hinkley, both directions: residual mean shifting up
	// (systematic over-prediction) or down (under-prediction).
	c.mUp += x - c.mean - delta
	c.minUp = math.Min(c.minUp, c.mUp)
	c.mDn += x - c.mean + delta
	c.maxDn = math.Max(c.maxDn, c.mDn)

	if c.tripped || c.count < minSamples {
		return false
	}
	if c.score() > lambda {
		c.tripped = true
		return true
	}
	return false
}

// score is the larger of the two directional Page–Hinkley statistics.
func (c *cell) score() float64 {
	return math.Max(c.mUp-c.minUp, c.maxDn-c.mDn)
}

func (c *cell) std() float64 {
	if c.count < 2 {
		return 0
	}
	return math.Sqrt(c.m2 / float64(c.count-1))
}

// Monitor aggregates residual streams for every (model × target) pair.
type Monitor struct {
	mu    sync.Mutex
	cfg   Config
	cells map[key]*cell
}

// NewMonitor returns an empty monitor.
func NewMonitor(cfg Config) *Monitor {
	cfg.defaults()
	return &Monitor{cfg: cfg, cells: make(map[key]*cell)}
}

// Observe folds one signed-percent-error residual into the (model,
// target) stream and reports whether this observation tripped the
// stream's detector (the retraining trigger edge).
func (m *Monitor) Observe(model, target string, pctError float64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.cells[key{model, target}]
	if !ok {
		c = &cell{}
		m.cells[key{model, target}] = c
	}
	return c.observe(pctError, m.cfg.Delta, m.cfg.Lambda, m.cfg.MinSamples)
}

// Reset clears every stream of the named model. Called after a
// promotion: the new incumbent's residuals start from scratch.
func (m *Monitor) Reset(model string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k := range m.cells {
		if k.model == model {
			delete(m.cells, k)
		}
	}
}

// Stat is one stream's view in a drift report.
type Stat struct {
	// Model and Target identify the stream.
	Model  string `json:"model"`
	Target string `json:"target"`
	// Count is the number of residuals observed.
	Count int `json:"count"`
	// MeanPct and StdPct are the running moments of the signed percent
	// error.
	MeanPct float64 `json:"mean_pct"`
	StdPct  float64 `json:"std_pct"`
	// MeanAbsPct is the running mean absolute percent error — the
	// online analogue of the paper's MPE (Eq. 2).
	MeanAbsPct float64 `json:"mean_abs_pct"`
	// Score is the current Page–Hinkley statistic.
	Score float64 `json:"score"`
	// Tripped reports whether the stream's detector has fired.
	Tripped bool `json:"tripped"`
}

// Report is the monitor's full state.
type Report struct {
	// Streams lists every (model × target) stream, sorted by model
	// then target.
	Streams []Stat `json:"streams"`
	// MaxScore is the largest stream score (the drift gauge).
	MaxScore float64 `json:"max_score"`
	// Tripped reports whether any stream has fired.
	Tripped bool `json:"tripped"`
}

// Report snapshots every stream.
func (m *Monitor) Report() Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := Report{Streams: make([]Stat, 0, len(m.cells))}
	for k, c := range m.cells {
		s := Stat{
			Model: k.model, Target: k.target,
			Count: c.count, MeanPct: c.mean, StdPct: c.std(),
			MeanAbsPct: c.meanAbs, Score: c.score(), Tripped: c.tripped,
		}
		r.Streams = append(r.Streams, s)
		r.MaxScore = math.Max(r.MaxScore, s.Score)
		r.Tripped = r.Tripped || s.Tripped
	}
	sort.Slice(r.Streams, func(i, j int) bool {
		a, b := r.Streams[i], r.Streams[j]
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		return a.Target < b.Target
	})
	return r
}

// MaxScore returns the largest stream score without building a full
// report (the metrics hot path).
func (m *Monitor) MaxScore() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	max := 0.0
	for _, c := range m.cells {
		max = math.Max(max, c.score())
	}
	return max
}

// Tripped reports whether any stream has fired.
func (m *Monitor) Tripped() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.cells {
		if c.tripped {
			return true
		}
	}
	return false
}
