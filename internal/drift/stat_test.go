package drift

// Statistical guarantees of the Page–Hinkley detector, checked over
// many independently seeded residual streams. The detector gates
// automatic retraining, so both error directions matter: a false trip
// wastes a training run and resets healthy drift state; a missed (or
// slow) detection leaves a mismatched model in service. All streams are
// generated from fixed seeds, so the measured rates are deterministic
// and the bounds cannot flake.

import (
	"fmt"
	"testing"

	"colocmodel/internal/xrand"
)

const (
	statStreams = 200
	noiseSigma  = 3.0 // residual noise in percent-error points
)

// TestFalseTripRateUnderPureNoise feeds zero-mean Gaussian residuals —
// a healthy model whose errors are noise around zero — into freshly
// seeded monitors and bounds the fraction of streams that ever trip
// under the default configuration. Each stream is 500 observations, an
// order of magnitude past MinSamples, so slow score accumulation has
// room to surface.
func TestFalseTripRateUnderPureNoise(t *testing.T) {
	trips := 0
	for s := 0; s < statStreams; s++ {
		src := xrand.New(uint64(1000 + s))
		m := NewMonitor(Config{}) // defaults: Delta 2, Lambda 50, MinSamples 30
		for i := 0; i < 500; i++ {
			if m.Observe("m", "app", src.Normal(0, noiseSigma)) {
				trips++
				break
			}
		}
	}
	// With Delta=2 the accumulators shed two points of slack per
	// observation, so a Lambda=50 excursion from sigma=3 noise alone is
	// a large-deviation event. Allow 2% for the fixed seed set (the
	// observed rate is 0).
	if rate := float64(trips) / statStreams; rate > 0.02 {
		t.Fatalf("false-trip rate %.3f (%d/%d streams) exceeds 0.02", rate, trips, statStreams)
	}
}

// TestSustainedShiftTripsQuickly injects a sustained mean shift —
// residuals jump from N(0,σ) to N(12,σ), a model suddenly
// under-predicting by ~12% — after a clean prefix, and requires every
// seeded stream to (a) stay quiet through the prefix and (b) trip
// within a bounded number of post-shift observations.
func TestSustainedShiftTripsQuickly(t *testing.T) {
	const (
		prefix    = 100
		shiftMean = 12.0
		maxDetect = 60 // post-shift observations allowed before detection
	)
	worst := 0
	for s := 0; s < statStreams; s++ {
		src := xrand.New(uint64(5000 + s))
		m := NewMonitor(Config{})
		for i := 0; i < prefix; i++ {
			if m.Observe("m", "app", src.Normal(0, noiseSigma)) {
				t.Fatalf("seed %d: tripped during the clean prefix at observation %d", s, i)
			}
		}
		detected := -1
		for i := 0; i < maxDetect; i++ {
			if m.Observe("m", "app", src.Normal(shiftMean, noiseSigma)) {
				detected = i + 1
				break
			}
		}
		if detected < 0 {
			t.Fatalf("seed %d: no trip within %d observations after a %.0f-point shift",
				s, maxDetect, shiftMean)
		}
		if detected > worst {
			worst = detected
		}
	}
	t.Logf("worst-case detection delay: %d observations", worst)
	// The shift clears Delta by ~10 points per observation, so the score
	// reaches Lambda=50 in roughly 5–15 observations even as the running
	// mean starts absorbing the shift.
	if worst > 30 {
		t.Fatalf("worst-case detection delay %d exceeds 30 observations", worst)
	}
}

// TestShiftDirectionSymmetry verifies the detector is genuinely
// two-sided: a downward shift (systematic over-prediction) must be
// caught exactly like an upward one.
func TestShiftDirectionSymmetry(t *testing.T) {
	for _, dir := range []float64{+1, -1} {
		dir := dir
		t.Run(fmt.Sprintf("dir=%+g", dir), func(t *testing.T) {
			for s := 0; s < 50; s++ {
				src := xrand.New(uint64(9000 + s))
				m := NewMonitor(Config{})
				for i := 0; i < 100; i++ {
					if m.Observe("m", "app", src.Normal(0, noiseSigma)) {
						t.Fatalf("seed %d: tripped on noise", s)
					}
				}
				tripped := false
				for i := 0; i < 60; i++ {
					if m.Observe("m", "app", src.Normal(dir*12, noiseSigma)) {
						tripped = true
						break
					}
				}
				if !tripped {
					t.Fatalf("seed %d: %+g-direction shift never detected", s, dir)
				}
			}
		})
	}
}

// TestStreamsAreIsolated checks that a shift in one (model × target)
// stream cannot trip — or inflate the score of — an unrelated stream.
func TestStreamsAreIsolated(t *testing.T) {
	src := xrand.New(77)
	m := NewMonitor(Config{})
	// Page–Hinkley detects changes against a stream's own history, so
	// the shifted stream needs a clean prefix before its mean jumps.
	for i := 0; i < 200; i++ {
		mean := 0.0
		if i >= 100 {
			mean = 15
		}
		m.Observe("m", "shifted", src.Normal(mean, noiseSigma))
		m.Observe("m", "healthy", src.Normal(0, noiseSigma))
	}
	rep := m.Report()
	if len(rep.Streams) != 2 {
		t.Fatalf("report has %d streams, want 2", len(rep.Streams))
	}
	for _, st := range rep.Streams {
		switch st.Target {
		case "shifted":
			if !st.Tripped {
				t.Error("shifted stream never tripped")
			}
		case "healthy":
			if st.Tripped {
				t.Error("healthy stream tripped by neighbour's shift")
			}
		}
	}
}
