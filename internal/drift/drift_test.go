package drift

import (
	"math"
	"testing"

	"colocmodel/internal/xrand"
)

// centered residual stream: noise around zero, the healthy regime.
func centered(src *xrand.Source) float64 { return src.Normal(0, 1.5) }

// shifted residual stream: a sustained bias, the drifted regime.
func shifted(src *xrand.Source) float64 { return src.Normal(-25, 3) }

func TestNoTripOnCenteredNoise(t *testing.T) {
	m := NewMonitor(Config{Delta: 2, Lambda: 50, MinSamples: 30})
	src := xrand.New(7)
	for i := 0; i < 5000; i++ {
		if m.Observe("primary", "canneal", centered(src)) {
			t.Fatalf("tripped on centered noise at observation %d", i)
		}
	}
	r := m.Report()
	if r.Tripped {
		t.Fatal("report tripped on centered noise")
	}
	if len(r.Streams) != 1 || r.Streams[0].Count != 5000 {
		t.Fatalf("report wrong: %+v", r)
	}
	if math.Abs(r.Streams[0].MeanPct) > 0.5 {
		t.Fatalf("mean pct = %v, want ~0", r.Streams[0].MeanPct)
	}
}

func TestTripsOnSustainedShift(t *testing.T) {
	m := NewMonitor(Config{Delta: 2, Lambda: 50, MinSamples: 10})
	src := xrand.New(11)
	// Healthy prefix.
	for i := 0; i < 200; i++ {
		if m.Observe("primary", "canneal", centered(src)) {
			t.Fatal("tripped during healthy prefix")
		}
	}
	// Injected shift: must trip, exactly once.
	trips := 0
	tripAt := -1
	for i := 0; i < 200; i++ {
		if m.Observe("primary", "canneal", shifted(src)) {
			trips++
			tripAt = i
		}
	}
	if trips != 1 {
		t.Fatalf("trips = %d, want exactly 1 (sticky)", trips)
	}
	if tripAt > 50 {
		t.Fatalf("detector needed %d shifted samples, want prompt detection", tripAt)
	}
	r := m.Report()
	if !r.Tripped || !r.Streams[0].Tripped {
		t.Fatal("report does not show the trip")
	}
	if r.MaxScore <= 50 {
		t.Fatalf("max score = %v, want > lambda", r.MaxScore)
	}
	if !m.Tripped() {
		t.Fatal("Tripped() false after trip")
	}
}

// The detector is two-sided: a positive shift (over-prediction) trips
// just like a negative one.
func TestTripsOnPositiveShift(t *testing.T) {
	m := NewMonitor(Config{Delta: 2, Lambda: 50, MinSamples: 10})
	src := xrand.New(3)
	for i := 0; i < 200; i++ {
		if m.Observe("primary", "cg", centered(src)) {
			t.Fatal("tripped during healthy prefix")
		}
	}
	tripped := false
	for i := 0; i < 300; i++ {
		if m.Observe("primary", "cg", src.Normal(+20, 2)) {
			tripped = true
		}
	}
	if !tripped {
		t.Fatal("positive shift never tripped")
	}
}

func TestMinSamplesGuard(t *testing.T) {
	m := NewMonitor(Config{Delta: 1, Lambda: 5, MinSamples: 50})
	for i := 0; i < 49; i++ {
		if m.Observe("primary", "cg", -100) {
			t.Fatalf("tripped at %d observations, below MinSamples", i+1)
		}
	}
}

func TestStreamsAreIndependentAndResettable(t *testing.T) {
	m := NewMonitor(Config{Delta: 2, Lambda: 30, MinSamples: 5})
	src := xrand.New(5)
	// Healthy prefix on every stream, then only a/canneal shifts:
	// Page–Hinkley detects the change-point relative to each stream's
	// own history.
	for i := 0; i < 100; i++ {
		m.Observe("a", "canneal", centered(src))
		m.Observe("a", "cg", centered(src))
		m.Observe("b", "canneal", centered(src))
	}
	for i := 0; i < 100; i++ {
		m.Observe("a", "canneal", shifted(src)) // drifts
		m.Observe("a", "cg", centered(src))     // stays healthy
		m.Observe("b", "canneal", centered(src))
	}
	r := m.Report()
	if len(r.Streams) != 3 {
		t.Fatalf("streams = %d, want 3", len(r.Streams))
	}
	// Sorted by model then target.
	if r.Streams[0].Model != "a" || r.Streams[0].Target != "canneal" || r.Streams[2].Model != "b" {
		t.Fatalf("sort order wrong: %+v", r.Streams)
	}
	if !r.Streams[0].Tripped || r.Streams[1].Tripped || r.Streams[2].Tripped {
		t.Fatalf("trip isolation wrong: %+v", r.Streams)
	}
	// Reset clears only model a's streams.
	m.Reset("a")
	r = m.Report()
	if len(r.Streams) != 1 || r.Streams[0].Model != "b" {
		t.Fatalf("reset wrong: %+v", r.Streams)
	}
	if m.Tripped() {
		t.Fatal("still tripped after reset")
	}
}

func TestWelfordMatchesDirectMoments(t *testing.T) {
	m := NewMonitor(Config{})
	src := xrand.New(13)
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := src.Normal(3, 7)
		xs = append(xs, x)
		m.Observe("primary", "cg", x)
	}
	mean, absSum, sq := 0.0, 0.0, 0.0
	for _, x := range xs {
		mean += x
		absSum += math.Abs(x)
	}
	mean /= float64(len(xs))
	absSum /= float64(len(xs))
	for _, x := range xs {
		sq += (x - mean) * (x - mean)
	}
	std := math.Sqrt(sq / float64(len(xs)-1))
	s := m.Report().Streams[0]
	if math.Abs(s.MeanPct-mean) > 1e-9 || math.Abs(s.StdPct-std) > 1e-9 || math.Abs(s.MeanAbsPct-absSum) > 1e-9 {
		t.Fatalf("moments diverge: got (%v,%v,%v) want (%v,%v,%v)",
			s.MeanPct, s.StdPct, s.MeanAbsPct, mean, std, absSum)
	}
}

func TestConcurrentObserve(t *testing.T) {
	m := NewMonitor(Config{})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			src := xrand.New(uint64(g))
			for i := 0; i < 500; i++ {
				m.Observe("primary", "cg", centered(src))
			}
			done <- struct{}{}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if n := m.Report().Streams[0].Count; n != 4000 {
		t.Fatalf("count = %d, want 4000", n)
	}
}
