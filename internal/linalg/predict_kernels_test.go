package linalg

import (
	"math"
	"testing"

	"colocmodel/internal/xrand"
)

// fillNormal fills m with seeded standard-normal values.
func fillNormal(m *Matrix, src *xrand.Source) {
	for i := range m.Data {
		m.Data[i] = src.Normal(0, 1)
	}
}

// TestGemvBiasIntoBitIdentical checks the 4-row blocked dot kernel against
// the naive "start at the bias, add terms in feature order" scalar loop —
// the accumulation order linreg.Model.Predict uses — across shapes that
// exercise every remainder path (rows mod 4 in 0..3, including rows < 4).
func TestGemvBiasIntoBitIdentical(t *testing.T) {
	src := xrand.New(7)
	for _, rows := range []int{1, 2, 3, 4, 5, 7, 8, 15, 64, 101} {
		for _, cols := range []int{1, 2, 3, 8, 14, 33} {
			x := NewMatrix(rows, cols)
			fillNormal(x, src)
			coef := make([]float64, cols)
			for j := range coef {
				coef[j] = src.Normal(0, 1)
			}
			bias := src.Normal(0, 1)

			want := make([]float64, rows)
			for i := 0; i < rows; i++ {
				s := bias
				for j := 0; j < cols; j++ {
					s += coef[j] * x.At(i, j)
				}
				want[i] = s
			}
			got := make([]float64, rows)
			GemvBiasInto(got, x, coef, bias)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("rows=%d cols=%d row %d: got %v want %v (not bit-identical)",
						rows, cols, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGemvBiasIntoPanicsOnBadShapes(t *testing.T) {
	x := NewMatrix(3, 2)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("coef", func() { GemvBiasInto(make([]float64, 3), x, make([]float64, 5), 0) })
	mustPanic("out", func() { GemvBiasInto(make([]float64, 2), x, make([]float64, 2), 0) })
}

// TestAccumMulABT8BitIdentical checks the 8-wide kernel against both the
// naive per-element ascending-p reference and the training kernel
// AccumMulABT: all three must agree bit-for-bit, including when dst starts
// from a non-zero (bias-like) state. Shapes cover every 8/4/1 remainder
// path and spans beyond one cache block.
func TestAccumMulABT8BitIdentical(t *testing.T) {
	src := xrand.New(11)
	for _, ar := range []int{1, 3, 5, 64, 65} {
		for _, br := range []int{1, 2, 4, 7, 8, 9, 13, 16, 20, 67} {
			for _, n := range []int{1, 3, 8, 21} {
				a := NewMatrix(ar, n)
				b := NewMatrix(br, n)
				fillNormal(a, src)
				fillNormal(b, src)
				init := NewMatrix(ar, br)
				fillNormal(init, src)

				want := init.Clone()
				for i := 0; i < ar; i++ {
					for j := 0; j < br; j++ {
						s := want.At(i, j)
						for p := 0; p < n; p++ {
							s += a.At(i, p) * b.At(j, p)
						}
						want.Set(i, j, s)
					}
				}
				four := init.Clone()
				AccumMulABT(four, a, b)
				got := init.Clone()
				AccumMulABT8(got, a, b)
				for i := range got.Data {
					if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
						t.Fatalf("a=%dx%d b=%dx%d: elem %d: ABT8 %v, naive %v (not bit-identical)",
							ar, n, br, n, i, got.Data[i], want.Data[i])
					}
					if math.Float64bits(got.Data[i]) != math.Float64bits(four.Data[i]) {
						t.Fatalf("a=%dx%d b=%dx%d: elem %d: ABT8 %v, ABT %v (not bit-identical)",
							ar, n, br, n, i, got.Data[i], four.Data[i])
					}
				}
			}
		}
	}
}

func TestAccumMulABT8PanicsOnBadShapes(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(4, 2)
	dst := NewMatrix(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner dimension mismatch")
		}
	}()
	AccumMulABT8(dst, a, b)
}
