package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"colocmodel/internal/xrand"
)

func TestSVDReconstruction(t *testing.T) {
	src := xrand.New(21)
	for _, dims := range [][2]int{{3, 3}, {8, 4}, {30, 8}} {
		a := randomMatrix(src, dims[0], dims[1])
		s, err := SVDecompose(a)
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild U Σ Vᵀ.
		n := dims[1]
		sig := NewMatrix(n, n)
		for i, v := range s.Values {
			sig.Set(i, i, v)
		}
		recon := s.U.Mul(sig).Mul(s.V.T())
		if recon.Sub(a).FrobeniusNorm() > 1e-9*(1+a.FrobeniusNorm()) {
			t.Fatalf("%v: UΣVᵀ != A (err %v)", dims, recon.Sub(a).FrobeniusNorm())
		}
		// Orthonormality.
		utu := s.U.T().Mul(s.U)
		if utu.Sub(Identity(n)).FrobeniusNorm() > 1e-9 {
			t.Fatalf("%v: UᵀU != I", dims)
		}
		vtv := s.V.T().Mul(s.V)
		if vtv.Sub(Identity(n)).FrobeniusNorm() > 1e-9 {
			t.Fatalf("%v: VᵀV != I", dims)
		}
		// Descending singular values.
		for i := 1; i < n; i++ {
			if s.Values[i] > s.Values[i-1]+1e-12 {
				t.Fatalf("singular values not sorted: %v", s.Values)
			}
			if s.Values[i] < 0 {
				t.Fatalf("negative singular value: %v", s.Values)
			}
		}
	}
}

func TestSVDErrors(t *testing.T) {
	if _, err := SVDecompose(NewMatrix(2, 3)); err == nil {
		t.Fatal("wide matrix accepted")
	}
	if _, err := SVDecompose(NewMatrix(0, 0)); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestSVDKnownValues(t *testing.T) {
	// diag(3, 2) has singular values {3, 2}.
	a := NewMatrixFromRows([][]float64{{3, 0}, {0, 2}})
	s, err := SVDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(s.Values[0], 3, 1e-12) || !approxEq(s.Values[1], 2, 1e-12) {
		t.Fatalf("values = %v", s.Values)
	}
	if s.Condition() < 1.49 || s.Condition() > 1.51 {
		t.Fatalf("condition = %v", s.Condition())
	}
}

func TestSVDRankDetection(t *testing.T) {
	// Rank-1 matrix: one nonzero singular value.
	a := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	s, err := SVDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	if r := s.Rank(0); r != 1 {
		t.Fatalf("rank = %d, want 1", r)
	}
	if !math.IsInf(s.Condition(), 1) {
		t.Fatalf("condition of singular matrix = %v", s.Condition())
	}
}

func TestSVDSolveRankDeficient(t *testing.T) {
	// Two identical columns; SVD pseudo-inverse gives the minimum-norm
	// solution with equal weights.
	a := NewMatrixFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	b := []float64{2, 4, 6}
	s, err := SVDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := s.Solve(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(x[0], 1, 1e-9) || !approxEq(x[1], 1, 1e-9) {
		t.Fatalf("minimum-norm solution = %v, want [1 1]", x)
	}
	if _, err := s.Solve([]float64{1}, 0); err == nil {
		t.Fatal("short rhs accepted")
	}
}

func TestSVDSolveMatchesQROnFullRank(t *testing.T) {
	src := xrand.New(22)
	a := randomMatrix(src, 20, 5)
	b := make([]float64, 20)
	for i := range b {
		b[i] = src.Normal(0, 1)
	}
	qrX, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SVDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	svdX, err := s.Solve(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qrX {
		if !approxEq(qrX[i], svdX[i], 1e-8) {
			t.Fatalf("solutions differ: %v vs %v", qrX, svdX)
		}
	}
}

// Property: Frobenius norm equals the root sum of squared singular values.
func TestSVDNormProperty(t *testing.T) {
	f := func(seed uint16) bool {
		src := xrand.New(uint64(seed) + 31)
		m := 3 + src.Intn(15)
		n := 1 + src.Intn(6)
		if n > m {
			n = m
		}
		a := randomMatrix(src, m, n)
		s, err := SVDecompose(a)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range s.Values {
			sum += v * v
		}
		return math.Abs(math.Sqrt(sum)-a.FrobeniusNorm()) < 1e-9*(1+a.FrobeniusNorm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSVD2000x8(b *testing.B) {
	src := xrand.New(23)
	a := randomMatrix(src, 2000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SVDecompose(a); err != nil {
			b.Fatal(err)
		}
	}
}
