package linalg

import (
	"math"
	"testing"

	"colocmodel/internal/xrand"
)

// naiveMul is the reference triple loop with strictly ascending k per
// destination element — the order the blocked kernels must reproduce.
func naiveMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// TestBlockedKernelsMatchNaive drives the blocked GEMM variants over
// randomized non-square shapes — including empty and single-row/column
// extremes and shapes straddling the block edge — and checks exact
// agreement with the naive reference (same accumulation order per
// element, so equality is bitwise up to ±0).
func TestBlockedKernelsMatchNaive(t *testing.T) {
	src := xrand.New(41)
	shapes := [][2]int{{0, 3}, {1, 1}, {3, 0}, {2, 5}, {7, 3}, {63, 9}, {64, 65}, {130, 17}, {5, 129}}
	for _, sa := range shapes {
		for _, k := range []int{0, 1, 7, 64, 70} {
			a := randomMatrix(src, sa[0], k)
			b := randomMatrix(src, k, sa[1])
			want := naiveMul(a, b)

			got := NewMatrix(a.Rows, b.Cols)
			MatMulInto(got, a, b)
			matrixApproxEqual(t, "MatMulInto", got, want, 0)

			bt := b.T()
			got2 := NewMatrix(a.Rows, bt.Rows)
			MulABTInto(got2, a, bt)
			matrixApproxEqual(t, "MulABTInto", got2, want, 1e-13)

			at := a.T()
			got3 := NewMatrix(at.Cols, b.Cols)
			MulATBInto(got3, at, b)
			matrixApproxEqual(t, "MulATBInto", got3, want, 1e-13)
		}
	}
}

// TestMatMulIntoMatchesMul pins the blocked kernel to the existing
// allocating Matrix.Mul bit-for-bit (both accumulate in ascending k with
// the same zero skip).
func TestMatMulIntoMatchesMul(t *testing.T) {
	src := xrand.New(42)
	for _, sh := range [][3]int{{3, 4, 5}, {65, 64, 63}, {1, 100, 1}, {128, 2, 128}} {
		a := randomMatrix(src, sh[0], sh[1])
		b := randomMatrix(src, sh[1], sh[2])
		// Inject zeros so the zero-skip path is exercised.
		for i := 0; i < len(a.Data); i += 7 {
			a.Data[i] = 0
		}
		want := a.Mul(b)
		got := NewMatrix(sh[0], sh[2])
		MatMulInto(got, a, b)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("shape %v: MatMulInto differs from Mul at %d: %v vs %v", sh, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestAccumVariantsStartFromDst checks the += contract: accumulating onto
// a pre-initialised destination equals init + product under the kernels'
// ordered accumulation.
func TestAccumVariantsStartFromDst(t *testing.T) {
	src := xrand.New(43)
	a := randomMatrix(src, 9, 5)
	b := randomMatrix(src, 5, 7)
	bias := randomMatrix(src, 9, 7)

	got := bias.Clone()
	AccumMatMul(got, a, b)
	// Reference: start each element at bias, add terms in k order.
	want := bias.Clone()
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := want.At(i, j)
			for k := 0; k < a.Cols; k++ {
				if a.At(i, k) == 0 {
					continue
				}
				s += a.At(i, k) * b.At(k, j)
			}
			want.Set(i, j, s)
		}
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("AccumMatMul bias element %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}

	bt := b.T()
	got2 := bias.Clone()
	AccumMulABT(got2, a, bt)
	want2 := bias.Clone()
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < bt.Rows; j++ {
			s := want2.At(i, j)
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * bt.At(j, k)
			}
			want2.Set(i, j, s)
		}
	}
	for i := range want2.Data {
		if got2.Data[i] != want2.Data[i] {
			t.Fatalf("AccumMulABT bias element %d: %v vs %v", i, got2.Data[i], want2.Data[i])
		}
	}
}

func matrixApproxEqual(t *testing.T, op string, got, want *Matrix, tol float64) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s shape %dx%d, want %dx%d", op, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		d := math.Abs(got.Data[i] - want.Data[i])
		if d > tol*(1+math.Abs(want.Data[i])) {
			t.Fatalf("%s element %d: got %v want %v (|Δ| %v)", op, i, got.Data[i], want.Data[i], d)
		}
	}
}

func TestKernelShapePanics(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(4, 2)
	for name, fn := range map[string]func(){
		"MatMulInto-inner": func() { MatMulInto(NewMatrix(2, 2), a, b) },
		"MatMulInto-dst":   func() { MatMulInto(NewMatrix(1, 1), a, NewMatrix(3, 2)) },
		"MulABTInto-inner": func() { MulABTInto(NewMatrix(2, 4), a, b) },
		"MulATBInto-outer": func() { MulATBInto(NewMatrix(3, 2), a, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on shape mismatch", name)
				}
			}()
			fn()
		}()
	}
}

// TestQRWorkspaceMatchesQRFactor pins the in-place factorisation and
// solve to the allocating path bit-for-bit, and checks the workspace is
// allocation-free once warmed.
func TestQRWorkspaceMatchesQRFactor(t *testing.T) {
	src := xrand.New(44)
	var ws QRWorkspace
	for _, sh := range [][2]int{{6, 3}, {40, 7}, {9, 9}, {100, 12}} {
		a := randomMatrix(src, sh[0], sh[1])
		b := make([]float64, sh[0])
		for i := range b {
			b[i] = src.Normal(0, 1)
		}
		qr, err := QRFactor(a)
		if err != nil {
			t.Fatal(err)
		}
		want, err := qr.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, sh[1])
		if err := ws.LeastSquares(a, b, x); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if x[i] != want[i] {
				t.Fatalf("shape %v: workspace solution[%d] = %v, QR.Solve = %v", sh, i, x[i], want[i])
			}
		}
		if ws.fact.Rows != qr.fact.Rows || ws.fact.Cols != qr.fact.Cols {
			t.Fatalf("workspace factor shape mismatch")
		}
		for i := range qr.fact.Data {
			if ws.fact.Data[i] != qr.fact.Data[i] {
				t.Fatalf("shape %v: factor element %d differs", sh, i)
			}
		}
	}
	// Warmed reuse on the largest shape performs zero allocations.
	a := randomMatrix(src, 100, 12)
	b := make([]float64, 100)
	x := make([]float64, 12)
	if err := ws.LeastSquares(a, b, x); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := ws.LeastSquares(a, b, x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed QRWorkspace.LeastSquares allocates %v/op, want 0", allocs)
	}
}

func TestQRWorkspaceErrors(t *testing.T) {
	var ws QRWorkspace
	if err := ws.Factorize(NewMatrix(2, 3)); err == nil {
		t.Fatal("wide matrix accepted")
	}
	a := NewMatrix(4, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	if err := ws.Factorize(a); err != nil {
		t.Fatal(err)
	}
	if err := ws.Solve(make([]float64, 3), make([]float64, 2)); err == nil {
		t.Fatal("short rhs accepted")
	}
	if err := ws.Solve(make([]float64, 4), make([]float64, 1)); err == nil {
		t.Fatal("short solution accepted")
	}
}

// TestQRWorkspaceRidgeFallback checks the singular path matches
// LeastSquares' ridge fallback.
func TestQRWorkspaceRidgeFallback(t *testing.T) {
	// Rank-deficient: duplicate column.
	a := NewMatrix(5, 2)
	for i := 0; i < 5; i++ {
		a.Set(i, 0, float64(i+1))
		a.Set(i, 1, float64(i+1))
	}
	b := []float64{2, 4, 6, 8, 10}
	want, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var ws QRWorkspace
	x := make([]float64, 2)
	if err := ws.LeastSquares(a, b, x); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("ridge fallback[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestScalAndAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	Scal(2, x)
	if x[0] != 2 || x[1] != 4 || x[2] != 6 {
		t.Fatalf("Scal: %v", x)
	}
	y := []float64{1, 1, 1}
	Axpy(0.5, x, y)
	if y[0] != 2 || y[1] != 3 || y[2] != 4 {
		t.Fatalf("Axpy: %v", y)
	}
}
