// Inference-path kernels: the blocked primitives the compiled predict
// closures (internal/core) evaluate batches with. They follow the same
// reproducibility contract as the training kernels in kernels.go — every
// destination element accumulates its terms in strictly ascending inner
// index order — so a compiled batched prediction is bit-for-bit equal to
// the scalar predict loop it replaces. The widths differ from the
// training kernels because inference shapes differ: prediction batches
// are tall and skinny (thousands of scenarios × ≤20 node layers), which
// rewards wider per-row ILP blocking over cache tiling.

package linalg

// GemvBiasInto computes out[i] = bias + Σ_j x[i][j]·coef[j] for every row
// of x without allocating: the fused "linear model folded to a single dot
// product" kernel. Rows are processed four at a time, each row keeping its
// own accumulator fed in ascending j order, so every out[i] is
// bit-identical to the naive "start at the bias, add terms in feature
// order" scalar sum (linreg.Model.Predict).
func GemvBiasInto(out []float64, x *Matrix, coef []float64, bias float64) {
	// Shape checks guard *before* calling dims: boxing batch-sized ints
	// into dims' variadic any on the happy path is the predict loop's only
	// allocation (ints above 255 aren't preboxed by the runtime).
	if x.Cols != len(coef) {
		dims("GemvBiasInto", false, "matrix has %d columns for %d coefficients", x.Cols, len(coef))
	}
	if len(out) != x.Rows {
		dims("GemvBiasInto", false, "out length %d for %d rows", len(out), x.Rows)
	}
	n := x.Cols
	i := 0
	for ; i+4 <= x.Rows; i += 4 {
		r0 := x.Data[i*n : (i+1)*n][:len(coef)]
		r1 := x.Data[(i+1)*n : (i+2)*n][:len(coef)]
		r2 := x.Data[(i+2)*n : (i+3)*n][:len(coef)]
		r3 := x.Data[(i+3)*n : (i+4)*n][:len(coef)]
		s0, s1, s2, s3 := bias, bias, bias, bias
		for j, c := range coef {
			s0 += c * r0[j]
			s1 += c * r1[j]
			s2 += c * r2[j]
			s3 += c * r3[j]
		}
		out[i], out[i+1], out[i+2], out[i+3] = s0, s1, s2, s3
	}
	for ; i < x.Rows; i++ {
		ri := x.Data[i*n : (i+1)*n][:len(coef)]
		s := bias
		for j, c := range coef {
			s += c * ri[j]
		}
		out[i] = s
	}
}

// AccumMulABT8 computes dst += a·bᵀ without allocating, like AccumMulABT
// but with eight destination columns (eight b rows) per streaming pass
// over each a row instead of four. Each dst element still receives its k
// terms in ascending order on top of whatever the caller stored there, so
// substituting this kernel for AccumMulABT changes no bits — only how
// many independent accumulators one pass over the inputs feeds. It is the
// batch-forward kernel of the compiled predict path, where layer widths
// (10–20 hidden nodes) comfortably exceed the four-wide blocking that
// training favours.
func AccumMulABT8(dst, a, b *Matrix) {
	// As in GemvBiasInto, guard before boxing dims arguments.
	if a.Cols != b.Cols {
		dims("AccumMulABT8", false, "inner dimension mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		dims("AccumMulABT8", false, "dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows)
	}
	n := a.Cols
	for i0 := 0; i0 < a.Rows; i0 += kernelBlock {
		i1 := min(i0+kernelBlock, a.Rows)
		for j0 := 0; j0 < b.Rows; j0 += kernelBlock {
			j1 := min(j0+kernelBlock, b.Rows)
			for i := i0; i < i1; i++ {
				ai := a.Data[i*n : (i+1)*n]
				di := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
				j := j0
				for ; j+8 <= j1; j += 8 {
					b0 := b.Data[j*n : (j+1)*n][:len(ai)]
					b1 := b.Data[(j+1)*n : (j+2)*n][:len(ai)]
					b2 := b.Data[(j+2)*n : (j+3)*n][:len(ai)]
					b3 := b.Data[(j+3)*n : (j+4)*n][:len(ai)]
					b4 := b.Data[(j+4)*n : (j+5)*n][:len(ai)]
					b5 := b.Data[(j+5)*n : (j+6)*n][:len(ai)]
					b6 := b.Data[(j+6)*n : (j+7)*n][:len(ai)]
					b7 := b.Data[(j+7)*n : (j+8)*n][:len(ai)]
					s0, s1, s2, s3 := di[j], di[j+1], di[j+2], di[j+3]
					s4, s5, s6, s7 := di[j+4], di[j+5], di[j+6], di[j+7]
					for p, av := range ai {
						s0 += av * b0[p]
						s1 += av * b1[p]
						s2 += av * b2[p]
						s3 += av * b3[p]
						s4 += av * b4[p]
						s5 += av * b5[p]
						s6 += av * b6[p]
						s7 += av * b7[p]
					}
					di[j], di[j+1], di[j+2], di[j+3] = s0, s1, s2, s3
					di[j+4], di[j+5], di[j+6], di[j+7] = s4, s5, s6, s7
				}
				for ; j+4 <= j1; j += 4 {
					b0 := b.Data[j*n : (j+1)*n][:len(ai)]
					b1 := b.Data[(j+1)*n : (j+2)*n][:len(ai)]
					b2 := b.Data[(j+2)*n : (j+3)*n][:len(ai)]
					b3 := b.Data[(j+3)*n : (j+4)*n][:len(ai)]
					s0, s1, s2, s3 := di[j], di[j+1], di[j+2], di[j+3]
					for p, av := range ai {
						s0 += av * b0[p]
						s1 += av * b1[p]
						s2 += av * b2[p]
						s3 += av * b3[p]
					}
					di[j], di[j+1], di[j+2], di[j+3] = s0, s1, s2, s3
				}
				for ; j < j1; j++ {
					bj := b.Data[j*n : (j+1)*n][:len(ai)]
					s := di[j]
					for p, av := range ai {
						s += av * bj[p]
					}
					di[j] = s
				}
			}
		}
	}
}
