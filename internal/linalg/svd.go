package linalg

import (
	"fmt"
	"math"
	"sort"
)

// SVD holds a thin singular value decomposition a = U·Σ·Vᵀ of an m×n
// matrix with m ≥ n: U is m×n with orthonormal columns, Σ is the diagonal
// of the n singular values in descending order, and V is n×n orthogonal.
type SVD struct {
	U      *Matrix
	Values []float64
	V      *Matrix
}

// SVDecompose computes the thin SVD by the one-sided Jacobi method:
// columns of a working copy of A are repeatedly rotated pairwise until
// mutually orthogonal; the column norms are then the singular values.
// One-sided Jacobi is slow for large matrices but simple, accurate for
// small ones, and entirely adequate for the ≤ 14-column design matrices
// this repository produces.
func SVDecompose(a *Matrix) (*SVD, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("linalg: SVDecompose requires rows >= cols, got %dx%d", m, n)
	}
	if n == 0 {
		return nil, fmt.Errorf("linalg: SVDecompose of empty matrix")
	}
	w := a.Clone()
	v := Identity(n)

	colDot := func(p, q int) float64 {
		s := 0.0
		for i := 0; i < m; i++ {
			s += w.At(i, p) * w.At(i, q)
		}
		return s
	}

	const maxSweeps = 60
	tol := 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				alpha := colDot(p, p)
				beta := colDot(q, q)
				gamma := colDot(p, q)
				if math.Abs(gamma) <= tol*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				off += gamma * gamma
				// Jacobi rotation angle.
				zeta := (beta - alpha) / (2 * gamma)
				var t float64
				if zeta >= 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					wp, wq := w.At(i, p), w.At(i, q)
					w.Set(i, p, c*wp-s*wq)
					w.Set(i, q, s*wp+c*wq)
				}
				for i := 0; i < n; i++ {
					vp, vq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if off == 0 {
			break
		}
	}

	// Column norms are the singular values; normalise U's columns.
	type pair struct {
		sigma float64
		idx   int
	}
	pairs := make([]pair, n)
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < m; i++ {
			s += w.At(i, j) * w.At(i, j)
		}
		pairs[j] = pair{sigma: math.Sqrt(s), idx: j}
	}
	sort.SliceStable(pairs, func(a, b int) bool { return pairs[a].sigma > pairs[b].sigma })

	out := &SVD{
		U:      NewMatrix(m, n),
		Values: make([]float64, n),
		V:      NewMatrix(n, n),
	}
	for newJ, p := range pairs {
		out.Values[newJ] = p.sigma
		if p.sigma > 0 {
			inv := 1 / p.sigma
			for i := 0; i < m; i++ {
				out.U.Set(i, newJ, w.At(i, p.idx)*inv)
			}
		}
		for i := 0; i < n; i++ {
			out.V.Set(i, newJ, v.At(i, p.idx))
		}
	}
	return out, nil
}

// Rank returns the numerical rank: the number of singular values above
// tol·σ_max. With tol ≤ 0 a default of n·ε·σ_max is used.
func (s *SVD) Rank(tol float64) int {
	if len(s.Values) == 0 || s.Values[0] == 0 {
		return 0
	}
	if tol <= 0 {
		tol = float64(len(s.Values)) * 2.22e-16
	}
	cut := tol * s.Values[0]
	r := 0
	for _, v := range s.Values {
		if v > cut {
			r++
		}
	}
	return r
}

// Condition returns σ_max/σ_min, or +Inf for a singular matrix.
func (s *SVD) Condition() float64 {
	n := len(s.Values)
	if n == 0 {
		return math.Inf(1)
	}
	min := s.Values[n-1]
	if min == 0 {
		return math.Inf(1)
	}
	return s.Values[0] / min
}

// Solve computes the minimum-norm least-squares solution of a·x = b via
// the pseudo-inverse, truncating singular values below tol·σ_max
// (default n·ε). This handles rank deficiency gracefully where plain QR
// fails.
func (s *SVD) Solve(b []float64, tol float64) ([]float64, error) {
	m, n := s.U.Rows, len(s.Values)
	if len(b) != m {
		return nil, fmt.Errorf("linalg: SVD.Solve rhs length %d, want %d", len(b), m)
	}
	if tol <= 0 {
		tol = float64(n) * 2.22e-16
	}
	cut := 0.0
	if n > 0 {
		cut = tol * s.Values[0]
	}
	// x = V Σ⁺ Uᵀ b
	utb := make([]float64, n)
	for j := 0; j < n; j++ {
		acc := 0.0
		for i := 0; i < m; i++ {
			acc += s.U.At(i, j) * b[i]
		}
		utb[j] = acc
	}
	for j := 0; j < n; j++ {
		if s.Values[j] > cut {
			utb[j] /= s.Values[j]
		} else {
			utb[j] = 0
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		acc := 0.0
		for j := 0; j < n; j++ {
			acc += s.V.At(i, j) * utb[j]
		}
		x[i] = acc
	}
	return x, nil
}
