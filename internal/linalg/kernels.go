// Batched, allocation-free dense kernels. The training and batch-inference
// hot paths (internal/mlp, internal/linreg) evaluate one GEMM per network
// layer over a whole sample matrix instead of looping sample-at-a-time, and
// they reuse caller-provided destination storage so a warmed training
// iteration performs zero heap allocations.
//
// Reproducibility contract: every kernel accumulates each destination
// element in strictly ascending inner-index order (k for A·B and A·Bᵀ, the
// shared row index for Aᵀ·B). Cache blocking only re-tiles the *outer*
// loops, so the sequence of floating-point additions applied to any single
// dst element is identical to the naive triple loop — results are
// bit-for-bit equal to the scalar reference implementations, which is what
// keeps the paper's Figures 1–4 outputs unchanged by the batched rewrite.
package linalg

import "fmt"

// kernelBlock is the cache-block edge for the blocked GEMM outer loops.
// 64 rows/cols of float64 keep the working tiles (3 × 64×64 × 8 B ≈ 96 KiB
// upper bound, far less at this repo's layer widths) inside L2 while being
// large enough that blocking overhead vanishes for the small matrices the
// modeling pipeline produces.
const kernelBlock = 64

func dims(op string, ok bool, format string, args ...any) {
	if !ok {
		panic(fmt.Sprintf("linalg: %s %s", op, fmt.Sprintf(format, args...)))
	}
}

// MatMulInto computes dst = a·b without allocating. dst must be
// a.Rows×b.Cols and must not alias a or b.
func MatMulInto(dst, a, b *Matrix) {
	dims("MatMulInto", a.Cols == b.Rows, "dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	dims("MatMulInto", dst.Rows == a.Rows && dst.Cols == b.Cols, "dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols)
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	AccumMatMul(dst, a, b)
}

// AccumMatMul computes dst += a·b without allocating: the blocked i-k-j
// GEMM. Per destination element the additions arrive in ascending k order
// (zero a-elements are skipped, matching Matrix.Mul), so accumulating on
// top of a caller-initialised dst — e.g. a broadcast bias row — reproduces
// the scalar "start at bias, add terms in order" sum bit-for-bit.
func AccumMatMul(dst, a, b *Matrix) {
	dims("AccumMatMul", a.Cols == b.Rows, "dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	dims("AccumMatMul", dst.Rows == a.Rows && dst.Cols == b.Cols, "dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols)
	n, k := a.Cols, b.Cols
	for i0 := 0; i0 < a.Rows; i0 += kernelBlock {
		i1 := min(i0+kernelBlock, a.Rows)
		for p0 := 0; p0 < n; p0 += kernelBlock {
			p1 := min(p0+kernelBlock, n)
			for i := i0; i < i1; i++ {
				ai := a.Data[i*n : (i+1)*n]
				di := dst.Data[i*k : (i+1)*k]
				for p := p0; p < p1; p++ {
					aip := ai[p]
					if aip == 0 {
						continue
					}
					bp := b.Data[p*k : (p+1)*k]
					for j, bpj := range bp {
						di[j] += aip * bpj
					}
				}
			}
		}
	}
}

// MulABTInto computes dst = a·bᵀ without allocating: dst[i][j] is the dot
// product of row i of a and row j of b. dst must be a.Rows×b.Rows and must
// not alias a or b.
func MulABTInto(dst, a, b *Matrix) {
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	AccumMulABT(dst, a, b)
}

// AccumMulABT computes dst += a·bᵀ without allocating. Each dst element
// receives its k terms in ascending order, on top of whatever the caller
// stored there (zero for a plain product, a bias for a dense layer).
func AccumMulABT(dst, a, b *Matrix) {
	dims("AccumMulABT", a.Cols == b.Cols, "inner dimension mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols)
	dims("AccumMulABT", dst.Rows == a.Rows && dst.Cols == b.Rows, "dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows)
	n := a.Cols
	for i0 := 0; i0 < a.Rows; i0 += kernelBlock {
		i1 := min(i0+kernelBlock, a.Rows)
		for j0 := 0; j0 < b.Rows; j0 += kernelBlock {
			j1 := min(j0+kernelBlock, b.Rows)
			for i := i0; i < i1; i++ {
				ai := a.Data[i*n : (i+1)*n]
				di := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
				// Four dst elements at a time: each keeps its own
				// accumulator fed in ascending p, so the per-element
				// addition order is untouched while one streaming pass
				// over ai feeds four b rows (ILP, fewer loop trips).
				j := j0
				for ; j+4 <= j1; j += 4 {
					b0 := b.Data[j*n : (j+1)*n][:len(ai)]
					b1 := b.Data[(j+1)*n : (j+2)*n][:len(ai)]
					b2 := b.Data[(j+2)*n : (j+3)*n][:len(ai)]
					b3 := b.Data[(j+3)*n : (j+4)*n][:len(ai)]
					s0, s1, s2, s3 := di[j], di[j+1], di[j+2], di[j+3]
					for p, av := range ai {
						s0 += av * b0[p]
						s1 += av * b1[p]
						s2 += av * b2[p]
						s3 += av * b3[p]
					}
					di[j], di[j+1], di[j+2], di[j+3] = s0, s1, s2, s3
				}
				for ; j < j1; j++ {
					bj := b.Data[j*n : (j+1)*n][:len(ai)]
					s := di[j]
					for p, av := range ai {
						s += av * bj[p]
					}
					di[j] = s
				}
			}
		}
	}
}

// MulATBInto computes dst = aᵀ·b without allocating. dst must be
// a.Cols×b.Cols and must not alias a or b.
func MulATBInto(dst, a, b *Matrix) {
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	AccumMulATB(dst, a, b)
}

// AccumMulATB computes dst += aᵀ·b without allocating: the rank-1-update
// formulation dst[i][j] += Σ_s a[s][i]·b[s][j] with s ascending. This is
// exactly the order a sample-at-a-time gradient accumulation applies its
// per-sample outer products in (zero a-elements skipped, as the scalar
// backward pass skips zero deltas), so batched gradient accumulation is
// bit-identical to the per-sample loop.
func AccumMulATB(dst, a, b *Matrix) {
	dims("AccumMulATB", a.Rows == b.Rows, "outer dimension mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	dims("AccumMulATB", dst.Rows == a.Cols && dst.Cols == b.Cols, "dst %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols)
	n, k := a.Cols, b.Cols
	for s := 0; s < a.Rows; s++ {
		as := a.Data[s*n : (s+1)*n]
		bs := b.Data[s*k : (s+1)*k]
		// Two dst rows per pass over bs. Within one rank-1 update the
		// touched dst elements are all distinct, so pairing rows changes
		// no per-element addition order; the zero skip still applies per
		// left element exactly as in the scalar loop.
		i := 0
		for ; i+2 <= n; i += 2 {
			av0, av1 := as[i], as[i+1]
			if av0 == 0 && av1 == 0 {
				continue
			}
			d0 := dst.Data[i*k : (i+1)*k][:len(bs)]
			d1 := dst.Data[(i+1)*k : (i+2)*k][:len(bs)]
			switch {
			case av0 != 0 && av1 != 0:
				for j, bv := range bs {
					d0[j] += av0 * bv
					d1[j] += av1 * bv
				}
			case av0 != 0:
				for j, bv := range bs {
					d0[j] += av0 * bv
				}
			default:
				for j, bv := range bs {
					d1[j] += av1 * bv
				}
			}
		}
		for ; i < n; i++ {
			av := as[i]
			if av == 0 {
				continue
			}
			di := dst.Data[i*k : (i+1)*k][:len(bs)]
			for j, bv := range bs {
				di[j] += av * bv
			}
		}
	}
}

// Scal scales x in place: x ← alpha·x.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Axpy computes y ← y + alpha·x in place (alias of AXPY under the BLAS
// casing the kernel set uses).
func Axpy(alpha float64, x, y []float64) { AXPY(alpha, x, y) }
