package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorisation or solve encounters a matrix
// that is singular (or numerically so) for the requested operation.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// QR holds a Householder QR factorisation of an m×n matrix with m >= n.
// The factors are stored compactly: R in the upper triangle of fact, and
// the Householder vectors below the diagonal with their scaling in tau.
type QR struct {
	fact *Matrix
	tau  []float64
}

// QRFactor computes the Householder QR factorisation of a. It requires
// a.Rows >= a.Cols. The input matrix is not modified.
func QRFactor(a *Matrix) (*QR, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("linalg: QRFactor requires rows >= cols, got %dx%d", m, n)
	}
	f := a.Clone()
	tau := make([]float64, n)
	qrFactorInPlace(f, tau)
	return &QR{fact: f, tau: tau}, nil
}

// qrFactorInPlace runs the Householder sweep on f, overwriting it with
// the compact factorisation and filling tau. It is the shared core of
// QRFactor and QRWorkspace.Factorize, so both produce bit-identical
// factors.
func qrFactorInPlace(f *Matrix, tau []float64) {
	m, n := f.Rows, f.Cols
	for k := 0; k < n; k++ {
		// Norm of the k-th column below (and including) the diagonal.
		norm := 0.0
		for i := k; i < m; i++ {
			v := f.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			tau[k] = 0
			continue
		}
		alpha := f.At(k, k)
		if alpha > 0 {
			norm = -norm
		}
		// Householder vector v = x - norm*e1, stored with v[0] normalised
		// implicitly: we keep v in the column and tau = 2/(v'v).
		f.Set(k, k, alpha-norm)
		vtv := 0.0
		for i := k; i < m; i++ {
			v := f.At(i, k)
			vtv += v * v
		}
		if vtv == 0 {
			tau[k] = 0
			f.Set(k, k, norm)
			continue
		}
		tau[k] = 2 / vtv
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += f.At(i, k) * f.At(i, j)
			}
			dot *= tau[k]
			for i := k; i < m; i++ {
				f.Set(i, j, f.At(i, j)-dot*f.At(i, k))
			}
		}
		// Store R's diagonal entry; the Householder vector stays below.
		// We stash v_k components in the column and remember r_kk
		// separately by overwriting after application: keep v in column,
		// diagonal of R goes to a parallel location. To stay compact we
		// put r_kk in the diagonal and rescale v so v[0] = 1 implicitly.
		vkk := f.At(k, k)
		if vkk != 0 {
			inv := 1 / vkk
			for i := k + 1; i < m; i++ {
				f.Set(i, k, f.At(i, k)*inv)
			}
			tau[k] *= vkk * vkk
		}
		f.Set(k, k, norm)
	}
}

// applyQTInPlace computes y ← Qᵀ·y in place for a length-m vector.
func applyQTInPlace(fact *Matrix, tau, y []float64) {
	m, n := fact.Rows, fact.Cols
	if len(y) != m {
		panic("linalg: applyQT length mismatch")
	}
	for k := 0; k < n; k++ {
		if tau[k] == 0 {
			continue
		}
		// v = [1, fact[k+1..m, k]]
		dot := y[k]
		for i := k + 1; i < m; i++ {
			dot += fact.At(i, k) * y[i]
		}
		dot *= tau[k]
		y[k] -= dot
		for i := k + 1; i < m; i++ {
			y[i] -= dot * fact.At(i, k)
		}
	}
}

// Solve solves the least-squares problem min ‖a·x − b‖₂ given the
// factorisation of a. It returns ErrSingular if R has a (numerically)
// zero diagonal entry, which indicates rank deficiency.
func (qr *QR) Solve(b []float64) ([]float64, error) {
	m, n := qr.fact.Rows, qr.fact.Cols
	if len(b) != m {
		return nil, fmt.Errorf("linalg: QR.Solve rhs length %d, want %d", len(b), m)
	}
	y := make([]float64, m)
	copy(y, b)
	x := make([]float64, n)
	if err := qrSolveInto(qr.fact, qr.tau, y, x); err != nil {
		return nil, err
	}
	return x, nil
}

// qrSolveInto solves the least-squares problem given the compact factors:
// y holds the right-hand side on entry (length m) and is destroyed; x
// (length n) receives the solution. No allocations.
func qrSolveInto(fact *Matrix, tau, y, x []float64) error {
	n := fact.Cols
	applyQTInPlace(fact, tau, y)
	// Back substitution on R x = y[:n].
	// Tolerance scaled by the largest diagonal magnitude.
	maxDiag := 0.0
	for k := 0; k < n; k++ {
		if d := math.Abs(fact.At(k, k)); d > maxDiag {
			maxDiag = d
		}
	}
	tol := maxDiag * 1e-13 * float64(n)
	for i := n - 1; i >= 0; i-- {
		d := fact.At(i, i)
		if math.Abs(d) <= tol {
			return ErrSingular
		}
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= fact.At(i, j) * x[j]
		}
		x[i] = s / d
	}
	return nil
}

// R returns the upper-triangular factor as a dense n×n matrix.
func (qr *QR) R() *Matrix {
	n := qr.fact.Cols
	r := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, qr.fact.At(i, j))
		}
	}
	return r
}

// LeastSquares solves min ‖a·x − b‖₂ via Householder QR. If the system is
// rank-deficient it falls back to ridge-regularised normal equations with a
// tiny lambda, which matches the pseudo-inverse behaviour of SciPy's lstsq
// closely enough for the model-fitting use here.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	qr, err := QRFactor(a)
	if err != nil {
		return nil, err
	}
	x, err := qr.Solve(b)
	if err == nil {
		return x, nil
	}
	if !errors.Is(err, ErrSingular) {
		return nil, err
	}
	return RidgeRegression(a, b, 1e-8)
}

// RidgeRegression solves (AᵀA + λI) x = Aᵀb via Cholesky. λ must be
// positive; it both regularises ill-conditioned fits and guarantees a
// solution for rank-deficient systems.
func RidgeRegression(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if lambda <= 0 {
		return nil, errors.New("linalg: ridge lambda must be positive")
	}
	if a.Rows != len(b) {
		return nil, fmt.Errorf("linalg: ridge rhs length %d, want %d", len(b), a.Rows)
	}
	n := a.Cols
	ata := NewMatrix(n, n)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for p := 0; p < n; p++ {
			if row[p] == 0 {
				continue
			}
			for q := p; q < n; q++ {
				ata.Data[p*n+q] += row[p] * row[q]
			}
		}
	}
	for p := 0; p < n; p++ {
		for q := 0; q < p; q++ {
			ata.Data[p*n+q] = ata.Data[q*n+p]
		}
		ata.Data[p*n+p] += lambda
	}
	atb := a.T().MulVec(b)
	return CholeskySolve(ata, atb)
}

// CholeskySolve solves the symmetric positive-definite system a·x = b.
func CholeskySolve(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	// Forward substitution L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * y[j]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// QRWorkspace is an in-place QR/least-squares solver that factorises into
// caller-owned scratch, so repeated fits (bootstrap partitions, retrain
// attempts) perform no per-fit factorisation allocations after warmup.
// Not goroutine-safe; use one workspace per worker.
type QRWorkspace struct {
	fact Matrix
	tau  []float64
	y    []float64
}

// ensure grows the workspace buffers to hold an m×n factorisation.
func (w *QRWorkspace) ensure(m, n int) {
	if cap(w.fact.Data) < m*n {
		w.fact.Data = make([]float64, m*n)
	}
	w.fact.Rows, w.fact.Cols = m, n
	w.fact.Data = w.fact.Data[:m*n]
	if cap(w.tau) < n {
		w.tau = make([]float64, n)
	}
	w.tau = w.tau[:n]
	if cap(w.y) < m {
		w.y = make([]float64, m)
	}
	w.y = w.y[:m]
}

// Factorize copies a into the workspace and runs the Householder sweep in
// place. It produces factors bit-identical to QRFactor's.
func (w *QRWorkspace) Factorize(a *Matrix) error {
	if a.Rows < a.Cols {
		return fmt.Errorf("linalg: QRWorkspace.Factorize requires rows >= cols, got %dx%d", a.Rows, a.Cols)
	}
	w.ensure(a.Rows, a.Cols)
	copy(w.fact.Data, a.Data)
	for i := range w.tau {
		w.tau[i] = 0
	}
	qrFactorInPlace(&w.fact, w.tau)
	return nil
}

// Solve solves min ‖a·x − b‖₂ for the most recently factorised a, writing
// the solution into x (length a.Cols). It allocates nothing and returns
// ErrSingular exactly when QR.Solve would.
func (w *QRWorkspace) Solve(b, x []float64) error {
	m, n := w.fact.Rows, w.fact.Cols
	if len(b) != m {
		return fmt.Errorf("linalg: QRWorkspace.Solve rhs length %d, want %d", len(b), m)
	}
	if len(x) != n {
		return fmt.Errorf("linalg: QRWorkspace.Solve solution length %d, want %d", len(x), n)
	}
	copy(w.y, b)
	return qrSolveInto(&w.fact, w.tau, w.y, x)
}

// LeastSquares factorises a into the workspace scratch and solves
// min ‖a·x − b‖₂ into x. Rank-deficient systems fall back to the same
// ridge-regularised path as the package-level LeastSquares (which
// allocates; singularity is the rare path).
func (w *QRWorkspace) LeastSquares(a *Matrix, b, x []float64) error {
	if err := w.Factorize(a); err != nil {
		return err
	}
	err := w.Solve(b, x)
	if err == nil {
		return nil
	}
	if !errors.Is(err, ErrSingular) {
		return err
	}
	sol, err := RidgeRegression(a, b, 1e-8)
	if err != nil {
		return err
	}
	copy(x, sol)
	return nil
}

// Cholesky returns the lower-triangular factor L with a = L·Lᵀ. It returns
// ErrSingular if a is not positive definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}
