// Package linalg implements the small dense linear-algebra kernel the
// modeling pipeline needs: vectors, matrices, Householder-QR least squares
// (the SciPy lstsq stand-in used for Eq. 1 of the paper), Cholesky
// factorisation, and a symmetric Jacobi eigendecomposition used by the PCA
// feature-ranking step.
//
// Matrices are stored row-major in a single backing slice. The package is
// written for correctness and clarity at the problem sizes that occur here
// (thousands of rows, at most a few dozen columns), not for BLAS-level
// throughput.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero-valued r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewMatrixFromRows builds a matrix from row slices, which must all have
// equal length.
func NewMatrixFromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		oi := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range mi {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Add returns m + b element-wise.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.sameShape(b, "Add")
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns m − b element-wise.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.sameShape(b, "Sub")
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns s·m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

func (m *Matrix) sameShape(b *Matrix, op string) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, b.Rows, b.Cols))
	}
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteByte('[')
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// AXPY computes y ← y + alpha·x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ScaleVec returns alpha·x as a new slice.
func ScaleVec(alpha float64, x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = alpha * v
	}
	return out
}

// SubVec returns a − b as a new slice.
func SubVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: SubVec length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// AddVec returns a + b as a new slice.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: AddVec length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}
