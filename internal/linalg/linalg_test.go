package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"colocmodel/internal/xrand"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomMatrix(src *xrand.Source, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = src.Normal(0, 1)
	}
	return m
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("Set/At mismatch")
	}
	if len(m.Row(1)) != 3 || m.Row(1)[2] != 5 {
		t.Fatal("Row mismatch")
	}
	if len(m.Col(2)) != 2 || m.Col(2)[1] != 5 {
		t.Fatal("Col mismatch")
	}
}

func TestMatrixFromRowsAndString(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatal("NewMatrixFromRows wrong layout")
	}
	if m.String() == "" {
		t.Fatal("String empty")
	}
}

func TestRaggedRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows did not panic")
		}
	}()
	NewMatrixFromRows([][]float64{{1, 2}, {3}})
}

func TestTransposeInvolution(t *testing.T) {
	src := xrand.New(1)
	m := randomMatrix(src, 4, 7)
	tt := m.T().T()
	for i := range m.Data {
		if m.Data[i] != tt.Data[i] {
			t.Fatal("T().T() != identity")
		}
	}
}

func TestMulIdentity(t *testing.T) {
	src := xrand.New(2)
	m := randomMatrix(src, 5, 5)
	p := m.Mul(Identity(5))
	for i := range m.Data {
		if !approxEq(p.Data[i], m.Data[i], 1e-12) {
			t.Fatal("M·I != M")
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul wrong at (%d,%d): %v", i, j, c.At(i, j))
			}
		}
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	src := xrand.New(3)
	a := randomMatrix(src, 6, 4)
	x := make([]float64, 4)
	for i := range x {
		x[i] = src.Normal(0, 1)
	}
	xm := NewMatrix(4, 1)
	copy(xm.Data, x)
	want := a.Mul(xm)
	got := a.MulVec(x)
	for i := 0; i < 6; i++ {
		if !approxEq(got[i], want.At(i, 0), 1e-12) {
			t.Fatal("MulVec disagrees with Mul")
		}
	}
}

func TestAddSubScale(t *testing.T) {
	src := xrand.New(4)
	a := randomMatrix(src, 3, 3)
	b := randomMatrix(src, 3, 3)
	s := a.Add(b).Sub(b)
	for i := range a.Data {
		if !approxEq(s.Data[i], a.Data[i], 1e-12) {
			t.Fatal("Add then Sub not identity")
		}
	}
	sc := a.Scale(2).Sub(a).Sub(a)
	if sc.FrobeniusNorm() > 1e-12 {
		t.Fatal("Scale(2) != A+A")
	}
}

func TestDotNormAXPY(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	if !approxEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
	y := []float64{1, 1, 1}
	AXPY(2, a, y)
	if y[2] != 7 {
		t.Fatalf("AXPY wrong: %v", y)
	}
	if SubVec(b, a)[0] != 3 || AddVec(a, b)[2] != 9 || ScaleVec(2, a)[1] != 4 {
		t.Fatal("vector helpers wrong")
	}
}

func TestQRReconstruction(t *testing.T) {
	src := xrand.New(5)
	for _, dims := range [][2]int{{4, 4}, {8, 3}, {20, 6}, {50, 8}} {
		a := randomMatrix(src, dims[0], dims[1])
		qr, err := QRFactor(a)
		if err != nil {
			t.Fatal(err)
		}
		// Verify by solving A x = A e_j exactly for square systems, or
		// that residual is orthogonal to the column space for tall ones.
		x0 := make([]float64, dims[1])
		for i := range x0 {
			x0[i] = src.Normal(0, 1)
		}
		b := a.MulVec(x0)
		x, err := qr.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if !approxEq(x[i], x0[i], 1e-8) {
				t.Fatalf("QR solve of consistent system wrong: got %v want %v", x[i], x0[i])
			}
		}
	}
}

func TestQRLeastSquaresResidualOrthogonal(t *testing.T) {
	src := xrand.New(6)
	a := randomMatrix(src, 30, 5)
	b := make([]float64, 30)
	for i := range b {
		b[i] = src.Normal(0, 1)
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r := SubVec(b, a.MulVec(x))
	// Normal equations: Aᵀ r = 0 at the least-squares optimum.
	atr := a.T().MulVec(r)
	for _, v := range atr {
		if math.Abs(v) > 1e-8 {
			t.Fatalf("residual not orthogonal to columns: %v", atr)
		}
	}
}

func TestQRRequiresTall(t *testing.T) {
	if _, err := QRFactor(NewMatrix(2, 3)); err == nil {
		t.Fatal("QRFactor accepted wide matrix")
	}
}

func TestLeastSquaresRankDeficientFallsBack(t *testing.T) {
	// Two identical columns: rank deficient; ridge fallback should still
	// produce a finite solution with small residual.
	a := NewMatrixFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}})
	b := []float64{2, 4, 6, 8}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r := SubVec(b, a.MulVec(x))
	if Norm2(r) > 1e-3 {
		t.Fatalf("rank-deficient fit residual too large: %v", Norm2(r))
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite solution")
		}
	}
}

func TestRidgeRejectsBadLambda(t *testing.T) {
	a := NewMatrix(3, 2)
	if _, err := RidgeRegression(a, []float64{1, 2, 3}, 0); err == nil {
		t.Fatal("ridge accepted lambda=0")
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	recon := l.Mul(l.T())
	if recon.Sub(a).FrobeniusNorm() > 1e-12 {
		t.Fatal("L·Lᵀ != A")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("Cholesky accepted indefinite matrix")
	}
}

func TestCholeskySolveKnown(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{4, 2}, {2, 3}})
	x, err := CholeskySolve(a, []float64{10, 9})
	if err != nil {
		t.Fatal(err)
	}
	// 4x+2y=10, 2x+3y=9 -> x=1.5, y=2.
	if !approxEq(x[0], 1.5, 1e-10) || !approxEq(x[1], 2, 1e-10) {
		t.Fatalf("CholeskySolve wrong: %v", x)
	}
}

func TestJacobiEigenKnown(t *testing.T) {
	// Symmetric matrix with known eigenvalues {3, 1}.
	a := NewMatrixFromRows([][]float64{{2, 1}, {1, 2}})
	e, err := JacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(e.Values[0], 3, 1e-10) || !approxEq(e.Values[1], 1, 1e-10) {
		t.Fatalf("eigenvalues %v, want [3 1]", e.Values)
	}
}

func TestJacobiEigenReconstruction(t *testing.T) {
	src := xrand.New(7)
	for _, n := range []int{2, 4, 8} {
		// Build a random symmetric matrix.
		b := randomMatrix(src, n, n)
		a := b.Add(b.T()).Scale(0.5)
		e, err := JacobiEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct V Λ Vᵀ.
		lam := NewMatrix(n, n)
		for i, v := range e.Values {
			lam.Set(i, i, v)
		}
		recon := e.Vectors.Mul(lam).Mul(e.Vectors.T())
		if recon.Sub(a).FrobeniusNorm() > 1e-8*(1+a.FrobeniusNorm()) {
			t.Fatalf("n=%d: VΛVᵀ != A (err %v)", n, recon.Sub(a).FrobeniusNorm())
		}
		// Eigenvectors orthonormal.
		vtv := e.Vectors.T().Mul(e.Vectors)
		if vtv.Sub(Identity(n)).FrobeniusNorm() > 1e-9 {
			t.Fatalf("n=%d: VᵀV != I", n)
		}
		// Sorted descending.
		for i := 1; i < n; i++ {
			if e.Values[i] > e.Values[i-1]+1e-12 {
				t.Fatalf("eigenvalues not sorted: %v", e.Values)
			}
		}
	}
}

func TestJacobiEigenRejectsAsymmetric(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := JacobiEigen(a); err == nil {
		t.Fatal("JacobiEigen accepted asymmetric matrix")
	}
}

// Property: for random consistent systems, LeastSquares recovers the
// generating coefficients.
func TestLeastSquaresPropertyRecovery(t *testing.T) {
	src := xrand.New(8)
	f := func(seed uint16) bool {
		s := xrand.New(uint64(seed) + 1000)
		rows := 10 + s.Intn(40)
		cols := 1 + s.Intn(6)
		a := randomMatrix(s, rows, cols)
		x0 := make([]float64, cols)
		for i := range x0 {
			x0[i] = s.Normal(0, 3)
		}
		b := a.MulVec(x0)
		x, err := LeastSquares(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !approxEq(x[i], x0[i], 1e-6*(1+math.Abs(x0[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: nil}); err != nil {
		t.Fatal(err)
	}
	_ = src
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestTransposeProductProperty(t *testing.T) {
	f := func(seed uint16) bool {
		s := xrand.New(uint64(seed))
		m, k, n := 1+s.Intn(6), 1+s.Intn(6), 1+s.Intn(6)
		a := randomMatrix(s, m, k)
		b := randomMatrix(s, k, n)
		lhs := a.Mul(b).T()
		rhs := b.T().Mul(a.T())
		return lhs.Sub(rhs).FrobeniusNorm() < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQRSolve2000x8(b *testing.B) {
	src := xrand.New(9)
	a := randomMatrix(src, 2000, 8)
	rhs := make([]float64, 2000)
	for i := range rhs {
		rhs[i] = src.Normal(0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeastSquares(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJacobiEigen8(b *testing.B) {
	src := xrand.New(10)
	m := randomMatrix(src, 8, 8)
	a := m.Add(m.T()).Scale(0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := JacobiEigen(a); err != nil {
			b.Fatal(err)
		}
	}
}
