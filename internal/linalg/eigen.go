package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym holds the eigendecomposition of a symmetric matrix: a = V·Λ·Vᵀ
// with eigenvalues sorted in descending order and eigenvectors stored as
// the columns of V.
type EigenSym struct {
	Values  []float64
	Vectors *Matrix // column j is the eigenvector for Values[j]
}

// JacobiEigen computes the eigendecomposition of the symmetric matrix a
// using the classical cyclic Jacobi rotation method. It is robust and more
// than fast enough for the ≤ 8×8 covariance matrices PCA produces here.
func JacobiEigen(a *Matrix) (*EigenSym, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: JacobiEigen of non-square %dx%d", a.Rows, a.Cols)
	}
	if !a.IsSymmetric(1e-9 * (1 + a.FrobeniusNorm())) {
		return nil, fmt.Errorf("linalg: JacobiEigen requires a symmetric matrix")
	}
	n := a.Rows
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if math.Sqrt(2*off) <= 1e-14*(1+w.FrobeniusNorm()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply the rotation G(p,q,θ) on both sides of w and
				// accumulate into v.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newJ, oldJ := range idx {
		sortedVals[newJ] = vals[oldJ]
		for i := 0; i < n; i++ {
			sortedVecs.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return &EigenSym{Values: sortedVals, Vectors: sortedVecs}, nil
}
