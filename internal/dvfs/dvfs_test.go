package dvfs

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewTableSortsDescending(t *testing.T) {
	tab, err := NewTable([]float64{1.6, 2.53, 2.0}, 0.8, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 3 {
		t.Fatalf("len = %d", tab.Len())
	}
	if tab.MaxFreq() != 2.53 || tab.MinFreq() != 1.6 {
		t.Fatalf("max/min = %v/%v", tab.MaxFreq(), tab.MinFreq())
	}
	s0, _ := tab.State(0)
	if s0.FreqGHz != 2.53 || s0.Index != 0 {
		t.Fatalf("P0 = %+v", s0)
	}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(nil, 0.8, 1.2); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := NewTable([]float64{1.0, -2}, 0.8, 1.2); err == nil {
		t.Fatal("negative freq accepted")
	}
	if _, err := NewTable([]float64{1.0}, 0, 1.2); err == nil {
		t.Fatal("zero vMin accepted")
	}
	if _, err := NewTable([]float64{1.0}, 1.2, 0.8); err == nil {
		t.Fatal("inverted voltage range accepted")
	}
}

func TestVoltageScalesWithFrequency(t *testing.T) {
	tab, _ := NewTable([]float64{1.2, 2.7}, 0.8, 1.2)
	hi, _ := tab.State(0)
	lo, _ := tab.State(1)
	if hi.Voltage != 1.2 || lo.Voltage != 0.8 {
		t.Fatalf("voltages %v/%v", hi.Voltage, lo.Voltage)
	}
}

func TestSingleFrequencyTable(t *testing.T) {
	tab, err := NewTable([]float64{2.0}, 0.8, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := tab.State(0)
	if s.Voltage != 1.2 {
		t.Fatalf("single-state voltage %v, want vMax", s.Voltage)
	}
}

func TestStateOutOfRange(t *testing.T) {
	tab, _ := NewTable([]float64{2.0}, 0.8, 1.2)
	if _, err := tab.State(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := tab.State(1); err == nil {
		t.Fatal("overflow index accepted")
	}
}

func TestNearest(t *testing.T) {
	tab, _ := NewTable([]float64{1.2, 1.5, 1.8, 2.1, 2.4, 2.7}, 0.8, 1.2)
	if got := tab.Nearest(1.65); got.FreqGHz != 1.5 && got.FreqGHz != 1.8 {
		t.Fatalf("Nearest(1.65) = %v", got.FreqGHz)
	}
	if got := tab.Nearest(10); got.FreqGHz != 2.7 {
		t.Fatalf("Nearest(10) = %v", got.FreqGHz)
	}
	if got := tab.Nearest(0); got.FreqGHz != 1.2 {
		t.Fatalf("Nearest(0) = %v", got.FreqGHz)
	}
}

func TestStatesIsCopy(t *testing.T) {
	tab, _ := NewTable([]float64{1.0, 2.0}, 0.8, 1.2)
	states := tab.States()
	states[0].FreqGHz = 99
	if tab.MaxFreq() == 99 {
		t.Fatal("States returned aliased slice")
	}
}

func TestDynamicPowerCubicScaling(t *testing.T) {
	tab, _ := NewTable([]float64{1.0, 2.0}, 0.6, 1.2)
	hi, _ := tab.State(0)
	lo, _ := tab.State(1)
	// P ∝ V²f: hi = 1.2²·2, lo = 0.6²·1 → ratio 8.
	ratio := hi.DynamicPowerW(1) / lo.DynamicPowerW(1)
	if math.Abs(ratio-8) > 1e-9 {
		t.Fatalf("power ratio %v, want 8", ratio)
	}
}

func TestSlowdownVsMax(t *testing.T) {
	p := PState{FreqGHz: 1.2}
	if got := p.SlowdownVsMax(2.4); got != 2 {
		t.Fatalf("slowdown %v, want 2", got)
	}
}

// Property: P-state ordering by index is ordering by descending frequency
// and descending voltage.
func TestTableOrderingProperty(t *testing.T) {
	f := func(seeds [6]uint16) bool {
		fs := make([]float64, 0, 6)
		for _, s := range seeds {
			fs = append(fs, 1.0+float64(s%3000)/1000)
		}
		tab, err := NewTable(fs, 0.7, 1.3)
		if err != nil {
			return false
		}
		states := tab.States()
		for i := 1; i < len(states); i++ {
			if states[i].FreqGHz > states[i-1].FreqGHz {
				return false
			}
			if states[i].Voltage > states[i-1].Voltage+1e-12 {
				return false
			}
			if states[i].Index != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
