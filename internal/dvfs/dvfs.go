// Package dvfs models processor performance states (P-states): the
// discrete voltage/frequency operating points of Section IV-A4 of the
// paper. P-states throttle core frequency (stretching compute time while
// leaving DRAM latency in wall-clock terms unchanged), which is why the
// paper keys the baseExTime feature on the P-state of the run.
//
// The package also carries a simple P-state power model used by the
// energy-estimation extension the paper's conclusion proposes.
package dvfs

import (
	"fmt"
	"sort"
)

// PState is one voltage/frequency operating point.
type PState struct {
	// Index is the P-state number; P0 is the highest-performance state.
	Index int
	// FreqGHz is the core clock frequency.
	FreqGHz float64
	// Voltage is the supply voltage in volts, used by the power model.
	Voltage float64
}

// Table is an ordered set of P-states, highest frequency first (P0 at
// position 0), mirroring ACPI convention.
type Table struct {
	states []PState
}

// NewTable builds a P-state table from frequencies in GHz. Voltages are
// assigned with a linear frequency-voltage relation between vMin and vMax,
// the standard first-order DVFS approximation. Frequencies are sorted
// descending and indexed from P0.
func NewTable(freqsGHz []float64, vMin, vMax float64) (*Table, error) {
	if len(freqsGHz) == 0 {
		return nil, fmt.Errorf("dvfs: empty frequency list")
	}
	if vMin <= 0 || vMax < vMin {
		return nil, fmt.Errorf("dvfs: invalid voltage range [%v, %v]", vMin, vMax)
	}
	fs := append([]float64(nil), freqsGHz...)
	for _, f := range fs {
		if f <= 0 {
			return nil, fmt.Errorf("dvfs: non-positive frequency %v", f)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(fs)))
	fMax, fMin := fs[0], fs[len(fs)-1]
	t := &Table{states: make([]PState, len(fs))}
	for i, f := range fs {
		var v float64
		if fMax == fMin {
			v = vMax
		} else {
			v = vMin + (vMax-vMin)*(f-fMin)/(fMax-fMin)
		}
		t.states[i] = PState{Index: i, FreqGHz: f, Voltage: v}
	}
	return t, nil
}

// Len returns the number of P-states.
func (t *Table) Len() int { return len(t.states) }

// State returns the P-state with the given index.
func (t *Table) State(index int) (PState, error) {
	if index < 0 || index >= len(t.states) {
		return PState{}, fmt.Errorf("dvfs: P-state index %d out of range [0,%d)", index, len(t.states))
	}
	return t.states[index], nil
}

// States returns a copy of all P-states, P0 first.
func (t *Table) States() []PState {
	return append([]PState(nil), t.states...)
}

// MaxFreq returns the P0 frequency in GHz.
func (t *Table) MaxFreq() float64 { return t.states[0].FreqGHz }

// MinFreq returns the lowest frequency in GHz.
func (t *Table) MinFreq() float64 { return t.states[len(t.states)-1].FreqGHz }

// Nearest returns the P-state whose frequency is closest to freqGHz.
func (t *Table) Nearest(freqGHz float64) PState {
	best := t.states[0]
	bestD := abs(best.FreqGHz - freqGHz)
	for _, s := range t.states[1:] {
		if d := abs(s.FreqGHz - freqGHz); d < bestD {
			best, bestD = s, d
		}
	}
	return best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// DynamicPowerW returns the dynamic power (watts) of one active core at
// this P-state: P = C·V²·f with effective switched capacitance cEff
// (nF·GHz units fold into the constant).
func (p PState) DynamicPowerW(cEff float64) float64 {
	return cEff * p.Voltage * p.Voltage * p.FreqGHz
}

// SlowdownVsMax returns how much longer a purely compute-bound task takes
// at this P-state relative to running at fMax: fMax/f.
func (p PState) SlowdownVsMax(fMaxGHz float64) float64 {
	return fMaxGHz / p.FreqGHz
}
