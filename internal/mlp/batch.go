package mlp

import (
	"fmt"
	"math"
	"sync"

	"colocmodel/internal/linalg"
)

// numParamVecs is how many parameter-length scratch vectors a Workspace
// carries for the trainers (SCG uses seven, early stopping an eighth).
const numParamVecs = 8

// Workspace holds the activation, delta and parameter-length scratch that
// the batched forward/backward passes and the trainers write into. A
// workspace grows on demand and is reused across every training iteration,
// so a warmed SCG/GD/RProp iteration performs zero heap allocations.
//
// Reuse contract: a Workspace is NOT goroutine-safe. Keep one workspace
// per worker goroutine (core.Evaluate does exactly that); sharing one
// across concurrent trainings corrupts both runs.
type Workspace struct {
	// acts[0] aliases the input matrix; acts[li+1] holds layer li's output
	// (rows × layer.out).
	acts []linalg.Matrix
	// deltas[li] holds the backpropagated error at layer li's output.
	deltas []linalg.Matrix
	// vecs are parameter-length scratch vectors for the optimisers.
	vecs [numParamVecs][]float64
	// pw backs the opt-in row-chunked parallel evaluation (SCGConfig.Workers).
	pw ParallelWorkspace
}

// NewWorkspace returns an empty workspace; buffers are allocated lazily on
// first use and grown as needed.
func NewWorkspace() *Workspace { return &Workspace{} }

// growMat resizes m to r×c, reusing the backing array when it is large
// enough.
func growMat(m *linalg.Matrix, r, c int) {
	if cap(m.Data) < r*c {
		m.Data = make([]float64, r*c)
	}
	m.Data = m.Data[:r*c]
	m.Rows, m.Cols = r, c
}

// ensure shapes the workspace for a batch of rows samples through n.
func (w *Workspace) ensure(n *Network, rows int) {
	nl := len(n.layers)
	if len(w.acts) < nl+1 {
		w.acts = make([]linalg.Matrix, nl+1)
	}
	if len(w.deltas) < nl {
		w.deltas = make([]linalg.Matrix, nl)
	}
	for li, ly := range n.layers {
		growMat(&w.acts[li+1], rows, ly.out)
		growMat(&w.deltas[li], rows, ly.out)
	}
}

// paramVec returns the i-th parameter-length scratch vector, grown to dim.
// Contents are whatever the previous user left there; callers that need
// zeros must clear it.
func (w *Workspace) paramVec(i, dim int) []float64 {
	if cap(w.vecs[i]) < dim {
		w.vecs[i] = make([]float64, dim)
	}
	w.vecs[i] = w.vecs[i][:dim]
	return w.vecs[i]
}

// forwardBatch runs the layer-at-a-time forward pass: one GEMM per layer
// over the whole sample matrix. Each pre-activation starts at the bias and
// receives its weighted inputs in ascending input-index order (see
// linalg.AccumMulABT), so every output is bit-identical to the scalar
// Forward loop. Returns the rows×1 output activation.
func (n *Network) forwardBatch(ws *Workspace, x *linalg.Matrix) *linalg.Matrix {
	ws.acts[0] = linalg.Matrix{Rows: x.Rows, Cols: x.Cols, Data: x.Data}
	nl := len(n.layers)
	for li, ly := range n.layers {
		src := &ws.acts[li]
		dst := &ws.acts[li+1]
		bias := n.params[ly.bOff : ly.bOff+ly.out]
		for s := 0; s < x.Rows; s++ {
			copy(dst.Data[s*ly.out:(s+1)*ly.out], bias)
		}
		wm := linalg.Matrix{Rows: ly.out, Cols: ly.in, Data: n.params[ly.wOff : ly.wOff+ly.in*ly.out]}
		linalg.AccumMulABT(dst, src, &wm)
		if li != nl-1 {
			if n.cfg.Activation == Tanh {
				// apply(Tanh) is math.Tanh; hoisting the switch out of
				// the hot loop changes no bits.
				for i, v := range dst.Data {
					dst.Data[i] = math.Tanh(v)
				}
			} else {
				for i, v := range dst.Data {
					dst.Data[i] = n.cfg.Activation.apply(v)
				}
			}
		}
	}
	return &ws.acts[nl]
}

// PredictBatchWS evaluates the network on every row of x, writing the
// predictions into out (length x.Rows). It allocates nothing once ws is
// warmed for this network shape and batch size.
func (n *Network) PredictBatchWS(ws *Workspace, x *linalg.Matrix, out []float64) error {
	if x.Cols != n.cfg.Inputs {
		return fmt.Errorf("mlp: matrix has %d columns, network expects %d", x.Cols, n.cfg.Inputs)
	}
	if len(out) != x.Rows {
		return fmt.Errorf("mlp: output slice length %d for %d samples", len(out), x.Rows)
	}
	ws.ensure(n, x.Rows)
	pred := n.forwardBatch(ws, x)
	copy(out, pred.Data)
	return nil
}

// LossWS returns the mean squared error ½·mean((pred−y)²) at the current
// parameters, reusing ws for the forward pass.
func (n *Network) LossWS(ws *Workspace, x *linalg.Matrix, y []float64) (float64, error) {
	if x.Cols != n.cfg.Inputs {
		return 0, fmt.Errorf("mlp: matrix has %d columns, network expects %d", x.Cols, n.cfg.Inputs)
	}
	if len(y) != x.Rows {
		return 0, fmt.Errorf("mlp: %d labels for %d samples", len(y), x.Rows)
	}
	ws.ensure(n, x.Rows)
	pred := n.forwardBatch(ws, x)
	s := 0.0
	for i, p := range pred.Data {
		d := p - y[i]
		s += d * d
	}
	return s / (2 * float64(len(y))), nil
}

// LossAndGradWS computes the loss and its gradient into the caller-provided
// grad slice (length NumParams) via one batched backward pass: a GEMM per
// layer for the weight gradients (linalg.AccumMulATB applies the per-sample
// rank-1 updates in ascending sample order, exactly the order the scalar
// per-sample loop accumulated them in) and a GEMM per layer for delta
// propagation. Results are bit-identical to the scalar reference; see the
// property tests. Zero heap allocations once ws is warmed.
func (n *Network) LossAndGradWS(ws *Workspace, x *linalg.Matrix, y []float64, grad []float64) (float64, error) {
	raw, err := n.rawLossGrad(ws, x, y, grad)
	if err != nil {
		return 0, err
	}
	inv := 1 / float64(x.Rows)
	linalg.Scal(inv, grad)
	return raw * 0.5 * inv, nil
}

// rawLossGrad computes the unnormalised sum-of-squares loss and gradient
// sums over the rows of x (no 1/n factor), so chunked parallel accumulation
// can combine partial sums before normalising once.
func (n *Network) rawLossGrad(ws *Workspace, x *linalg.Matrix, y []float64, grad []float64) (float64, error) {
	if x.Cols != n.cfg.Inputs {
		return 0, fmt.Errorf("mlp: matrix has %d columns, network expects %d", x.Cols, n.cfg.Inputs)
	}
	if len(y) != x.Rows {
		return 0, fmt.Errorf("mlp: %d labels for %d samples", len(y), x.Rows)
	}
	if len(grad) != len(n.params) {
		return 0, fmt.Errorf("mlp: gradient slice length %d, network has %d params", len(grad), len(n.params))
	}
	ws.ensure(n, x.Rows)
	n.forwardBatch(ws, x)
	return n.backwardRaw(ws, x, y, grad), nil
}

// backwardRaw runs the batched backward pass against the activations
// already present in ws (from a forwardBatch at the current parameters),
// filling grad with unnormalised gradient sums and returning the raw
// sum-of-squares loss. Separated from rawLossGrad so the SCG accept path
// can reuse the trial step's forward activations instead of recomputing
// them — the recomputation would produce identical bits, so skipping it
// changes nothing but time.
func (n *Network) backwardRaw(ws *Workspace, x *linalg.Matrix, y []float64, grad []float64) float64 {
	nl := len(n.layers)
	for i := range grad {
		grad[i] = 0
	}
	out := &ws.acts[nl]
	dl := &ws.deltas[nl-1]
	loss := 0.0
	for s := 0; s < x.Rows; s++ {
		diff := out.Data[s] - y[s]
		loss += diff * diff
		dl.Data[s] = diff
	}
	for li := nl - 1; li >= 0; li-- {
		ly := n.layers[li]
		delta := &ws.deltas[li]
		in := &ws.acts[li]
		gw := linalg.Matrix{Rows: ly.out, Cols: ly.in, Data: grad[ly.wOff : ly.wOff+ly.in*ly.out]}
		linalg.AccumMulATB(&gw, delta, in)
		gb := grad[ly.bOff : ly.bOff+ly.out]
		for s := 0; s < x.Rows; s++ {
			ds := delta.Data[s*ly.out : (s+1)*ly.out]
			for o, d := range ds {
				if d == 0 {
					continue
				}
				gb[o] += d
			}
		}
		if li == 0 {
			break
		}
		prev := &ws.deltas[li-1]
		for i := range prev.Data {
			prev.Data[i] = 0
		}
		wm := linalg.Matrix{Rows: ly.out, Cols: ly.in, Data: n.params[ly.wOff : ly.wOff+ly.in*ly.out]}
		linalg.AccumMatMul(prev, delta, &wm)
		pa := &ws.acts[li]
		if n.cfg.Activation == Tanh {
			// derivFromOutput(Tanh) is 1 - v*v; hoisting the switch out
			// of the hot loop changes no bits.
			for i, v := range pa.Data {
				prev.Data[i] *= 1 - v*v
			}
		} else {
			for i, v := range pa.Data {
				prev.Data[i] *= n.cfg.Activation.derivFromOutput(v)
			}
		}
	}
	return loss
}

// ParallelWorkspace carries per-worker workspaces and gradient buffers for
// LossAndGradParallel/LossParallel. Like Workspace it is not
// goroutine-safe across calls; one ParallelWorkspace serves one caller at
// a time.
type ParallelWorkspace struct {
	chunks []Workspace
	grads  [][]float64
	losses []float64
	errs   []error
}

// LossAndGradParallel is the opt-in row-chunked variant of LossAndGradWS
// for large batches: the sample matrix is split into `workers` contiguous
// row chunks, each chunk's unnormalised loss and gradient sums are computed
// concurrently in its own workspace, and the partial sums are reduced in
// ascending chunk order. The reduction order is deterministic for a fixed
// worker count, but the grouping of floating-point additions differs from
// the sequential pass, so results match LossAndGradWS to ~1e-12 rather
// than bit-for-bit — which is why the sequential pass remains the default
// everywhere reproducibility matters.
func (n *Network) LossAndGradParallel(pw *ParallelWorkspace, x *linalg.Matrix, y []float64, grad []float64, workers int) (float64, error) {
	if x.Cols != n.cfg.Inputs {
		return 0, fmt.Errorf("mlp: matrix has %d columns, network expects %d", x.Cols, n.cfg.Inputs)
	}
	if len(y) != x.Rows {
		return 0, fmt.Errorf("mlp: %d labels for %d samples", len(y), x.Rows)
	}
	if len(grad) != len(n.params) {
		return 0, fmt.Errorf("mlp: gradient slice length %d, network has %d params", len(grad), len(n.params))
	}
	workers = pw.ensure(workers, x.Rows, len(grad))
	chunk := (x.Rows + workers - 1) / workers
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		lo := g * chunk
		hi := min(lo+chunk, x.Rows)
		wg.Add(1)
		go func(g, lo, hi int) {
			defer wg.Done()
			xc := linalg.Matrix{Rows: hi - lo, Cols: x.Cols, Data: x.Data[lo*x.Cols : hi*x.Cols]}
			pw.losses[g], pw.errs[g] = n.rawLossGrad(&pw.chunks[g], &xc, y[lo:hi], pw.grads[g])
		}(g, lo, hi)
	}
	wg.Wait()
	for g := 0; g < workers; g++ {
		if pw.errs[g] != nil {
			return 0, pw.errs[g]
		}
	}
	for i := range grad {
		grad[i] = 0
	}
	loss := 0.0
	for g := 0; g < workers; g++ {
		loss += pw.losses[g]
		linalg.Axpy(1, pw.grads[g], grad)
	}
	inv := 1 / float64(x.Rows)
	linalg.Scal(inv, grad)
	return loss * 0.5 * inv, nil
}

// LossParallel is the row-chunked counterpart of LossWS: chunk forward
// passes run concurrently and the per-chunk sum-of-squares partials are
// reduced in ascending chunk order. Same determinism contract as
// LossAndGradParallel.
func (n *Network) LossParallel(pw *ParallelWorkspace, x *linalg.Matrix, y []float64, workers int) (float64, error) {
	if x.Cols != n.cfg.Inputs {
		return 0, fmt.Errorf("mlp: matrix has %d columns, network expects %d", x.Cols, n.cfg.Inputs)
	}
	if len(y) != x.Rows {
		return 0, fmt.Errorf("mlp: %d labels for %d samples", len(y), x.Rows)
	}
	workers = pw.ensure(workers, x.Rows, 0)
	chunk := (x.Rows + workers - 1) / workers
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		lo := g * chunk
		hi := min(lo+chunk, x.Rows)
		wg.Add(1)
		go func(g, lo, hi int) {
			defer wg.Done()
			ws := &pw.chunks[g]
			xc := linalg.Matrix{Rows: hi - lo, Cols: x.Cols, Data: x.Data[lo*x.Cols : hi*x.Cols]}
			ws.ensure(n, xc.Rows)
			pred := n.forwardBatch(ws, &xc)
			s := 0.0
			for i, p := range pred.Data {
				d := p - y[lo+i]
				s += d * d
			}
			pw.losses[g] = s
			pw.errs[g] = nil
		}(g, lo, hi)
	}
	wg.Wait()
	loss := 0.0
	for g := 0; g < workers; g++ {
		loss += pw.losses[g]
	}
	return loss / (2 * float64(len(y))), nil
}

// ensure clamps workers to [1, rows], grows the per-chunk buffers and
// returns the effective worker count. gradDim 0 skips gradient buffers.
func (pw *ParallelWorkspace) ensure(workers, rows, gradDim int) int {
	if workers > rows {
		workers = rows
	}
	if workers < 1 {
		workers = 1
	}
	if len(pw.chunks) < workers {
		pw.chunks = append(pw.chunks, make([]Workspace, workers-len(pw.chunks))...)
	}
	for len(pw.grads) < workers {
		pw.grads = append(pw.grads, nil)
	}
	if len(pw.losses) < workers {
		pw.losses = make([]float64, workers)
		pw.errs = make([]error, workers)
	}
	if gradDim > 0 {
		for g := 0; g < workers; g++ {
			if len(pw.grads[g]) != gradDim {
				pw.grads[g] = make([]float64, gradDim)
			}
		}
	}
	return workers
}
