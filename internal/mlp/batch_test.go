package mlp

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"colocmodel/internal/linalg"
	"colocmodel/internal/xrand"
)

func randomDataset(src *xrand.Source, rows, cols int) (*linalg.Matrix, []float64) {
	x := linalg.NewMatrix(rows, cols)
	for i := range x.Data {
		x.Data[i] = src.Normal(0, 1)
	}
	y := make([]float64, rows)
	for i := range y {
		y[i] = src.Normal(0, 1)
	}
	return x, y
}

// TestBatchedMatchesScalarProperty sweeps randomized layer widths and
// batch sizes (including a single row) across all three activations and
// checks the batched forward, loss and gradient agree with the scalar
// reference bit-for-bit — a far stronger pin than the 1e-12 the issue
// asks for, and the property that keeps Figures 1–4 unchanged.
func TestBatchedMatchesScalarProperty(t *testing.T) {
	src := xrand.New(7)
	cases := []struct {
		inputs int
		hidden []int
		rows   int
		act    Activation
	}{
		{3, []int{10}, 1, Tanh},
		{5, []int{20}, 17, Tanh},
		{8, []int{13}, 64, Tanh},
		{2, []int{4, 6}, 33, Tanh},
		{6, []int{15}, 128, Sigmoid},
		{4, []int{9, 5}, 70, ReLU},
		{1, []int{1}, 2, Tanh},
		{12, []int{20}, 200, Tanh},
	}
	for ci, tc := range cases {
		t.Run(fmt.Sprintf("case%d_in%d_rows%d_%s", ci, tc.inputs, tc.rows, tc.act), func(t *testing.T) {
			n, err := New(Config{Inputs: tc.inputs, Hidden: tc.hidden, Activation: tc.act, Seed: uint64(100 + ci)})
			if err != nil {
				t.Fatal(err)
			}
			x, y := randomDataset(src, tc.rows, tc.inputs)

			wantPred, err := scalarPredictBatch(n, x)
			if err != nil {
				t.Fatal(err)
			}
			gotPred, err := n.PredictBatch(x)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantPred {
				if gotPred[i] != wantPred[i] {
					t.Fatalf("pred[%d]: batched %v, scalar %v", i, gotPred[i], wantPred[i])
				}
			}

			wantLoss, err := scalarLoss(n, x, y)
			if err != nil {
				t.Fatal(err)
			}
			gotLoss, err := n.Loss(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if gotLoss != wantLoss {
				t.Fatalf("loss: batched %v, scalar %v", gotLoss, wantLoss)
			}

			wantL, wantGrad, err := scalarLossAndGrad(n, x, y)
			if err != nil {
				t.Fatal(err)
			}
			gotL, gotGrad, err := n.LossAndGrad(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if gotL != wantL {
				t.Fatalf("grad loss: batched %v, scalar %v", gotL, wantL)
			}
			for i := range wantGrad {
				if gotGrad[i] != wantGrad[i] {
					t.Fatalf("grad[%d]: batched %v, scalar %v (Δ %g)", i, gotGrad[i], wantGrad[i], gotGrad[i]-wantGrad[i])
				}
			}
		})
	}
}

// TestPredictBatchZeroRows pins the empty-batch edge.
func TestPredictBatchZeroRows(t *testing.T) {
	n, err := New(Config{Inputs: 4, Hidden: []int{6}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := n.PredictBatch(linalg.NewMatrix(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("got %d predictions for empty batch", len(out))
	}
}

// TestTrainSCGMatchesScalarReference trains two identically initialised
// networks — one through the batched workspace trainer, one through the
// retained scalar reference — and requires identical parameter
// trajectories, loss histories and iteration counts.
func TestTrainSCGMatchesScalarReference(t *testing.T) {
	src := xrand.New(11)
	x, y := randomDataset(src, 60, 5)
	cfg := Config{Inputs: 5, Hidden: []int{12}, Activation: Tanh, Seed: 99}
	nBatched, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nScalar := nBatched.Clone()

	tcfg := SCGConfig{MaxIter: 60}
	resB, err := TrainSCG(nBatched, x, y, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	resS, err := scalarTrainSCG(nScalar, x, y, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Iterations != resS.Iterations || resB.Converged != resS.Converged {
		t.Fatalf("trajectory diverged: batched %d iters (conv=%v), scalar %d (conv=%v)",
			resB.Iterations, resB.Converged, resS.Iterations, resS.Converged)
	}
	if resB.FinalLoss != resS.FinalLoss || resB.GradNorm != resS.GradNorm {
		t.Fatalf("final state: batched loss=%v gn=%v, scalar loss=%v gn=%v",
			resB.FinalLoss, resB.GradNorm, resS.FinalLoss, resS.GradNorm)
	}
	if len(resB.LossHistory) != len(resS.LossHistory) {
		t.Fatalf("history length %d vs %d", len(resB.LossHistory), len(resS.LossHistory))
	}
	for i := range resB.LossHistory {
		if resB.LossHistory[i] != resS.LossHistory[i] {
			t.Fatalf("history[%d]: %v vs %v", i, resB.LossHistory[i], resS.LossHistory[i])
		}
	}
	pb, ps := nBatched.Params(), nScalar.Params()
	for i := range pb {
		if pb[i] != ps[i] {
			t.Fatalf("param[%d]: batched %v, scalar %v", i, pb[i], ps[i])
		}
	}
}

// TestTrainSCGWithWeightDecayMatchesScalar covers the penalised path.
func TestTrainSCGWithWeightDecayMatchesScalar(t *testing.T) {
	src := xrand.New(13)
	x, y := randomDataset(src, 40, 4)
	cfg := Config{Inputs: 4, Hidden: []int{8}, Activation: Tanh, Seed: 5}
	nBatched, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nScalar := nBatched.Clone()
	tcfg := SCGConfig{MaxIter: 30, WeightDecay: 1e-3}
	if _, err := TrainSCG(nBatched, x, y, tcfg); err != nil {
		t.Fatal(err)
	}
	if _, err := scalarTrainSCG(nScalar, x, y, tcfg); err != nil {
		t.Fatal(err)
	}
	pb, ps := nBatched.Params(), nScalar.Params()
	for i := range pb {
		if pb[i] != ps[i] {
			t.Fatalf("param[%d]: batched %v, scalar %v", i, pb[i], ps[i])
		}
	}
}

// TestWorkspaceReuseAcrossShapes reuses one workspace across different
// batch sizes and networks, which is exactly what core.Evaluate's worker
// goroutines do.
func TestWorkspaceReuseAcrossShapes(t *testing.T) {
	ws := NewWorkspace()
	src := xrand.New(17)
	for _, rows := range []int{50, 10, 80, 1} {
		for _, hidden := range []int{6, 14} {
			n, err := New(Config{Inputs: 3, Hidden: []int{hidden}, Seed: uint64(rows + hidden)})
			if err != nil {
				t.Fatal(err)
			}
			x, y := randomDataset(src, rows, 3)
			fresh := n.Clone()
			resWS, err := TrainSCGWS(n, x, y, SCGConfig{MaxIter: 15}, ws)
			if err != nil {
				t.Fatal(err)
			}
			resFresh, err := TrainSCG(fresh, x, y, SCGConfig{MaxIter: 15})
			if err != nil {
				t.Fatal(err)
			}
			if resWS.FinalLoss != resFresh.FinalLoss {
				t.Fatalf("rows=%d hidden=%d: reused workspace loss %v, fresh %v", rows, hidden, resWS.FinalLoss, resFresh.FinalLoss)
			}
			pa, pf := n.Params(), fresh.Params()
			for i := range pa {
				if pa[i] != pf[i] {
					t.Fatalf("rows=%d hidden=%d: param[%d] differs after reuse", rows, hidden, i)
				}
			}
		}
	}
}

// TestLossAndGradParallelClose checks the opt-in chunked gradient is
// within 1e-12 of the sequential pass and deterministic for a fixed
// worker count.
func TestLossAndGradParallelClose(t *testing.T) {
	src := xrand.New(23)
	n, err := New(Config{Inputs: 6, Hidden: []int{16}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	x, y := randomDataset(src, 257, 6)
	wantLoss, wantGrad, err := n.LossAndGrad(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 7, 300} {
		pw := &ParallelWorkspace{}
		grad := make([]float64, n.NumParams())
		loss, err := n.LossAndGradParallel(pw, x, y, grad, workers)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(loss-wantLoss) > 1e-12*(1+math.Abs(wantLoss)) {
			t.Fatalf("workers=%d: loss %v vs sequential %v", workers, loss, wantLoss)
		}
		for i := range grad {
			if math.Abs(grad[i]-wantGrad[i]) > 1e-12*(1+math.Abs(wantGrad[i])) {
				t.Fatalf("workers=%d: grad[%d] %v vs %v", workers, i, grad[i], wantGrad[i])
			}
		}
		// Determinism: a second run with the same worker count is
		// bit-identical.
		grad2 := make([]float64, n.NumParams())
		loss2, err := n.LossAndGradParallel(pw, x, y, grad2, workers)
		if err != nil {
			t.Fatal(err)
		}
		if loss2 != loss {
			t.Fatalf("workers=%d: loss not deterministic: %v vs %v", workers, loss2, loss)
		}
		for i := range grad {
			if grad2[i] != grad[i] {
				t.Fatalf("workers=%d: grad[%d] not deterministic", workers, i)
			}
		}
		// Chunk-count 1 degenerates to the sequential order exactly.
		if workers == 1 && loss != wantLoss {
			t.Fatalf("workers=1 should be bit-identical: %v vs %v", loss, wantLoss)
		}
	}
}

// TestTrainSCGParallelWorkers checks the opt-in parallel trainer:
// deterministic for a fixed worker count and close to the sequential
// trajectory on a well-conditioned problem.
func TestTrainSCGParallelWorkers(t *testing.T) {
	src := xrand.New(43)
	x, y := randomDataset(src, 300, 5)
	cfg := Config{Inputs: 5, Hidden: []int{10}, Seed: 77}
	seqNet, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parNet := seqNet.Clone()
	parNet2 := seqNet.Clone()
	tcfg := SCGConfig{MaxIter: 25}
	resSeq, err := TrainSCG(seqNet, x, y, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := tcfg
	pcfg.Workers = 4
	resPar, err := TrainSCG(parNet, x, y, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	resPar2, err := TrainSCG(parNet2, x, y, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic: same worker count → bit-identical runs.
	p1, p2 := parNet.Params(), parNet2.Params()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("parallel training not deterministic at param %d", i)
		}
	}
	if resPar.Iterations != resPar2.Iterations || resPar.FinalLoss != resPar2.FinalLoss {
		t.Fatalf("parallel training not deterministic: %+v vs %+v", resPar, resPar2)
	}
	// Close to sequential: same order of magnitude of final loss. The
	// trajectories legitimately diverge after many iterations (chunked
	// summation differs in the last bits), so compare outcomes loosely.
	if resPar.FinalLoss > 10*resSeq.FinalLoss+1e-9 {
		t.Fatalf("parallel final loss %v far from sequential %v", resPar.FinalLoss, resSeq.FinalLoss)
	}
}

// TestSCGStepZeroAllocs is the allocation-regression guard the issue asks
// for: a warmed SCG iteration must not touch the heap.
func TestSCGStepZeroAllocs(t *testing.T) {
	src := xrand.New(29)
	n, err := New(Config{Inputs: 8, Hidden: []int{20}, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	x, y := randomDataset(src, 128, 8)
	ws := NewWorkspace()
	// GradTol/LossTol impossibly small so steps keep running; MaxIter
	// generous so the preallocated loss history never grows.
	st, err := newSCGState(n, x, y, SCGConfig{MaxIter: 100000, GradTol: 1e-300}, ws)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ { // warm every buffer and code path
		if _, err := st.step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := st.step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed SCG step allocates %v/op, want 0", allocs)
	}
}

// TestPredictBatchWSZeroAllocs guards the batched inference path serve
// leans on.
func TestPredictBatchWSZeroAllocs(t *testing.T) {
	src := xrand.New(37)
	n, err := New(Config{Inputs: 7, Hidden: []int{15}, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := randomDataset(src, 64, 7)
	ws := NewWorkspace()
	out := make([]float64, x.Rows)
	if err := n.PredictBatchWS(ws, x, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := n.PredictBatchWS(ws, x, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed PredictBatchWS allocates %v/op, want 0", allocs)
	}
}

// benchTrainCase builds a synthetic training set shaped like the paper's
// per-partition problems (Table II features → 10–20 hidden nodes).
func benchTrainCase(rows int) (*linalg.Matrix, []float64) {
	src := xrand.New(uint64(rows))
	return func() (*linalg.Matrix, []float64) {
		x, y := randomDataset(src, rows, 8)
		return x, y
	}()
}

// BenchmarkTrainSCGBatched measures the new workspace trainer across
// small/medium/large batches; compare against
// BenchmarkTrainSCGScalarRef for the old per-sample path.
func BenchmarkTrainSCGBatched(b *testing.B) {
	for _, rows := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("rows%d", rows), func(b *testing.B) {
			x, y := benchTrainCase(rows)
			ws := NewWorkspace()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err := New(Config{Inputs: 8, Hidden: []int{20}, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := TrainSCGWS(n, x, y, SCGConfig{MaxIter: 20, GradTol: 1e-300}, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrainSCGParallel measures the opt-in row-chunked trainer with
// one worker per core.
func BenchmarkTrainSCGParallel(b *testing.B) {
	for _, rows := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("rows%d", rows), func(b *testing.B) {
			x, y := benchTrainCase(rows)
			ws := NewWorkspace()
			cfg := SCGConfig{MaxIter: 20, GradTol: 1e-300, Workers: runtime.GOMAXPROCS(0)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err := New(Config{Inputs: 8, Hidden: []int{20}, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := TrainSCGWS(n, x, y, cfg, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrainSCGScalarRef is the pre-rewrite per-sample trainer kept
// as the benchmark baseline.
func BenchmarkTrainSCGScalarRef(b *testing.B) {
	for _, rows := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("rows%d", rows), func(b *testing.B) {
			x, y := benchTrainCase(rows)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err := New(Config{Inputs: 8, Hidden: []int{20}, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := scalarTrainSCG(n, x, y, SCGConfig{MaxIter: 20, GradTol: 1e-300}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
