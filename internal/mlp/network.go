// Package mlp implements the neural-network modeling technique of Section
// III-D: a feed-forward network whose inputs are the features of the
// chosen Table II set and whose single linear output is the predicted
// co-located execution time. Networks here use 10–20 hidden nodes, as in
// the paper, and are trained with Møller's scaled conjugate gradient
// ("a scaled conjugate gradient numerical method was used to determine the
// coefficient values at each network node"). A plain gradient-descent
// trainer is included as an ablation baseline.
package mlp

import (
	"fmt"
	"math"

	"colocmodel/internal/linalg"
	"colocmodel/internal/xrand"
)

// Activation selects the hidden-layer nonlinearity.
type Activation int

const (
	// Tanh is the default and what the experiments use.
	Tanh Activation = iota
	// Sigmoid is the logistic function.
	Sigmoid
	// ReLU is max(0, x).
	ReLU
)

// String names the activation.
func (a Activation) String() string {
	switch a {
	case Tanh:
		return "tanh"
	case Sigmoid:
		return "sigmoid"
	case ReLU:
		return "relu"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// Apply evaluates the activation at x. Exported for the compiled predict
// path (internal/core), which resolves the activation once at compile
// time and must then apply exactly the same function the interpreted
// forward pass uses.
func (a Activation) Apply(x float64) float64 { return a.apply(x) }

func (a Activation) apply(x float64) float64 {
	switch a {
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	default:
		return math.Tanh(x)
	}
}

// derivFromOutput returns f'(x) given f(x) (all three activations allow
// this form, which avoids recomputing the pre-activation).
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case Sigmoid:
		return y * (1 - y)
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	default:
		return 1 - y*y
	}
}

// Config describes a network.
type Config struct {
	// Inputs is the feature arity.
	Inputs int
	// Hidden lists hidden-layer widths; the paper uses one layer of
	// 10–20 nodes depending on the feature set.
	Hidden []int
	// Activation is the hidden nonlinearity (output is always linear,
	// as appropriate for regression).
	Activation Activation
	// Seed drives weight initialisation.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Inputs < 1 {
		return fmt.Errorf("mlp: need at least 1 input, got %d", c.Inputs)
	}
	if len(c.Hidden) == 0 {
		return fmt.Errorf("mlp: need at least one hidden layer")
	}
	for i, h := range c.Hidden {
		if h < 1 {
			return fmt.Errorf("mlp: hidden layer %d has %d nodes", i, h)
		}
	}
	if c.Activation < Tanh || c.Activation > ReLU {
		return fmt.Errorf("mlp: unknown activation %d", int(c.Activation))
	}
	return nil
}

// layer is one dense layer's parameter layout inside the flat vector.
type layer struct {
	in, out int
	wOff    int // weights offset: out × in, row-major by output node
	bOff    int // bias offset: out
}

// Network is a feed-forward regression network with a single linear
// output. Parameters live in one flat vector so optimisers can treat the
// network as a black-box differentiable function.
type Network struct {
	cfg    Config
	layers []layer
	params []float64
}

// New builds a network with Xavier/Glorot-scaled random initial weights.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sizes := append([]int{cfg.Inputs}, cfg.Hidden...)
	sizes = append(sizes, 1) // linear output
	n := &Network{cfg: cfg}
	off := 0
	for l := 0; l+1 < len(sizes); l++ {
		ly := layer{in: sizes[l], out: sizes[l+1], wOff: off}
		off += ly.in * ly.out
		ly.bOff = off
		off += ly.out
		n.layers = append(n.layers, ly)
	}
	n.params = make([]float64, off)
	src := xrand.New(cfg.Seed)
	for _, ly := range n.layers {
		scale := math.Sqrt(2.0 / float64(ly.in+ly.out))
		for i := 0; i < ly.in*ly.out; i++ {
			n.params[ly.wOff+i] = src.Normal(0, scale)
		}
		// Biases start at zero.
	}
	return n, nil
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// NumParams returns the parameter count.
func (n *Network) NumParams() int { return len(n.params) }

// Params returns a copy of the flat parameter vector.
func (n *Network) Params() []float64 {
	return append([]float64(nil), n.params...)
}

// SetParams overwrites the parameter vector.
func (n *Network) SetParams(p []float64) error {
	if len(p) != len(n.params) {
		return fmt.Errorf("mlp: %d params, network has %d", len(p), len(n.params))
	}
	copy(n.params, p)
	return nil
}

// Forward computes the network output for one input vector.
func (n *Network) Forward(x []float64) (float64, error) {
	if len(x) != n.cfg.Inputs {
		return 0, fmt.Errorf("mlp: %d inputs, network expects %d", len(x), n.cfg.Inputs)
	}
	act := x
	for li, ly := range n.layers {
		next := make([]float64, ly.out)
		for o := 0; o < ly.out; o++ {
			s := n.params[ly.bOff+o]
			w := n.params[ly.wOff+o*ly.in : ly.wOff+(o+1)*ly.in]
			for i, v := range act {
				s += w[i] * v
			}
			if li == len(n.layers)-1 {
				next[o] = s // linear output
			} else {
				next[o] = n.cfg.Activation.apply(s)
			}
		}
		act = next
	}
	return act[0], nil
}

// PredictBatch evaluates the network on every row of x. It is the
// allocating convenience wrapper over PredictBatchWS: one GEMM per layer
// over the whole batch (see batch.go), bit-identical to calling Forward
// per row.
func (n *Network) PredictBatch(x *linalg.Matrix) ([]float64, error) {
	var ws Workspace
	out := make([]float64, x.Rows)
	if err := n.PredictBatchWS(&ws, x, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Loss returns the mean squared error ½·mean((pred−y)²) at the current
// parameters. Allocating wrapper over LossWS.
func (n *Network) Loss(x *linalg.Matrix, y []float64) (float64, error) {
	var ws Workspace
	return n.LossWS(&ws, x, y)
}

// LossAndGrad computes the loss and its gradient with respect to the flat
// parameter vector by reverse-mode differentiation (backpropagation).
// Allocating wrapper over LossAndGradWS; the batched backward pass applies
// per-sample contributions in the same order as the former per-sample
// loop, so gradients are bit-identical to the scalar reference kept in
// the tests.
func (n *Network) LossAndGrad(x *linalg.Matrix, y []float64) (float64, []float64, error) {
	var ws Workspace
	grad := make([]float64, len(n.params))
	loss, err := n.LossAndGradWS(&ws, x, y, grad)
	if err != nil {
		return 0, nil, err
	}
	return loss, grad, nil
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	out := &Network{cfg: n.cfg, layers: append([]layer(nil), n.layers...)}
	out.params = append([]float64(nil), n.params...)
	return out
}
