package mlp

import (
	"math"
	"testing"
	"testing/quick"

	"colocmodel/internal/linalg"
	"colocmodel/internal/xrand"
)

func newNet(t testing.TB, inputs int, hidden []int) *Network {
	t.Helper()
	n, err := New(Config{Inputs: inputs, Hidden: hidden, Activation: Tanh, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Inputs: 0, Hidden: []int{5}},
		{Inputs: 2, Hidden: nil},
		{Inputs: 2, Hidden: []int{0}},
		{Inputs: 2, Hidden: []int{5}, Activation: Activation(9)},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestActivationNames(t *testing.T) {
	if Tanh.String() != "tanh" || Sigmoid.String() != "sigmoid" || ReLU.String() != "relu" {
		t.Fatal("activation names wrong")
	}
	if Activation(9).String() == "" {
		t.Fatal("unknown activation empty")
	}
}

func TestParamLayoutAndRoundTrip(t *testing.T) {
	n := newNet(t, 3, []int{4, 2})
	// Params: 3*4+4 + 4*2+2 + 2*1+1 = 16+10+3 = 29.
	if n.NumParams() != 29 {
		t.Fatalf("params = %d, want 29", n.NumParams())
	}
	p := n.Params()
	p[0] = 42
	if n.Params()[0] == 42 {
		t.Fatal("Params returned aliased slice")
	}
	if err := n.SetParams(p); err != nil {
		t.Fatal(err)
	}
	if n.Params()[0] != 42 {
		t.Fatal("SetParams did not apply")
	}
	if err := n.SetParams([]float64{1}); err == nil {
		t.Fatal("short param vector accepted")
	}
}

func TestForwardErrors(t *testing.T) {
	n := newNet(t, 2, []int{3})
	if _, err := n.Forward([]float64{1}); err == nil {
		t.Fatal("short input accepted")
	}
	if _, err := n.PredictBatch(linalg.NewMatrix(2, 3)); err == nil {
		t.Fatal("wrong-width batch accepted")
	}
}

func TestDeterministicInitialisation(t *testing.T) {
	a, _ := New(Config{Inputs: 2, Hidden: []int{5}, Seed: 3})
	b, _ := New(Config{Inputs: 2, Hidden: []int{5}, Seed: 3})
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed, different weights")
		}
	}
	c, _ := New(Config{Inputs: 2, Hidden: []int{5}, Seed: 4})
	same := true
	for i, v := range c.Params() {
		if v != pa[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds, same weights")
	}
}

// TestGradientCheck verifies backprop against central finite differences
// for every activation.
func TestGradientCheck(t *testing.T) {
	src := xrand.New(5)
	for _, act := range []Activation{Tanh, Sigmoid, ReLU} {
		n, err := New(Config{Inputs: 3, Hidden: []int{4, 3}, Activation: act, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		x := linalg.NewMatrix(7, 3)
		y := make([]float64, 7)
		for i := range x.Data {
			x.Data[i] = src.Normal(0, 1)
		}
		for i := range y {
			y[i] = src.Normal(0, 1)
		}
		_, grad, err := n.LossAndGrad(x, y)
		if err != nil {
			t.Fatal(err)
		}
		p := n.Params()
		const h = 1e-6
		for i := 0; i < len(p); i += 3 { // sample every third param for speed
			orig := p[i]
			p[i] = orig + h
			if err := n.SetParams(p); err != nil {
				t.Fatal(err)
			}
			lp, _ := n.Loss(x, y)
			p[i] = orig - h
			if err := n.SetParams(p); err != nil {
				t.Fatal(err)
			}
			lm, _ := n.Loss(x, y)
			p[i] = orig
			if err := n.SetParams(p); err != nil {
				t.Fatal(err)
			}
			num := (lp - lm) / (2 * h)
			if math.Abs(num-grad[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s: grad[%d] = %v, numerical %v", act, i, grad[i], num)
			}
		}
	}
}

func TestLossAndGradErrors(t *testing.T) {
	n := newNet(t, 2, []int{3})
	x := linalg.NewMatrix(2, 2)
	if _, _, err := n.LossAndGrad(x, []float64{1}); err == nil {
		t.Fatal("mismatched labels accepted")
	}
	if _, _, err := n.LossAndGrad(linalg.NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("wrong-width matrix accepted")
	}
	if _, err := n.Loss(x, []float64{1}); err == nil {
		t.Fatal("Loss mismatched labels accepted")
	}
}

// xorProblem builds the classic non-linearly-separable XOR regression
// task, which a linear model cannot fit.
func xorProblem() (*linalg.Matrix, []float64) {
	x := linalg.NewMatrixFromRows([][]float64{{-1, -1}, {-1, 1}, {1, -1}, {1, 1}})
	y := []float64{-1, 1, 1, -1}
	return x, y
}

func TestSCGSolvesXOR(t *testing.T) {
	x, y := xorProblem()
	n, err := New(Config{Inputs: 2, Hidden: []int{8}, Activation: Tanh, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainSCG(n, x, y, SCGConfig{MaxIter: 2000, LossTol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss > 1e-3 {
		t.Fatalf("SCG failed XOR: loss %v after %d iters", res.FinalLoss, res.Iterations)
	}
	for i := 0; i < x.Rows; i++ {
		p, err := n.Forward(x.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-y[i]) > 0.1 {
			t.Fatalf("XOR sample %d: predicted %v, want %v", i, p, y[i])
		}
	}
}

func TestSCGMonotoneLossHistory(t *testing.T) {
	x, y := xorProblem()
	n, _ := New(Config{Inputs: 2, Hidden: []int{6}, Seed: 3})
	res, err := TrainSCG(n, x, y, SCGConfig{MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.LossHistory); i++ {
		if res.LossHistory[i] > res.LossHistory[i-1]+1e-12 {
			t.Fatalf("accepted SCG step increased loss at %d: %v -> %v",
				i, res.LossHistory[i-1], res.LossHistory[i])
		}
	}
}

func TestSCGFitsSmoothNonlinearFunction(t *testing.T) {
	src := xrand.New(8)
	n := 200
	x := linalg.NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := src.Uniform(-1, 1), src.Uniform(-1, 1)
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = math.Sin(2*a) * math.Cos(b)
	}
	net, _ := New(Config{Inputs: 2, Hidden: []int{16}, Seed: 4})
	res, err := TrainSCG(net, x, y, SCGConfig{MaxIter: 800})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss > 0.002 {
		t.Fatalf("SCG fit too poor: loss %v", res.FinalLoss)
	}
}

func TestSCGBeatsOrMatchesGDOnBudget(t *testing.T) {
	// The paper chose SCG; verify it converges at least as well as
	// momentum GD under a comparable gradient-evaluation budget.
	src := xrand.New(9)
	n := 150
	x := linalg.NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := src.Uniform(-2, 2), src.Uniform(-2, 2)
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = a*b + 0.5*a*a
	}
	scgNet, _ := New(Config{Inputs: 2, Hidden: []int{12}, Seed: 5})
	scgRes, err := TrainSCG(scgNet, x, y, SCGConfig{MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	gdNet, _ := New(Config{Inputs: 2, Hidden: []int{12}, Seed: 5})
	gdRes, err := TrainGD(gdNet, x, y, GDConfig{Epochs: 600, LearningRate: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if scgRes.FinalLoss > gdRes.FinalLoss*2 {
		t.Fatalf("SCG (%v) much worse than GD (%v)", scgRes.FinalLoss, gdRes.FinalLoss)
	}
}

func TestGDReducesLoss(t *testing.T) {
	x, y := xorProblem()
	n, _ := New(Config{Inputs: 2, Hidden: []int{8}, Seed: 6})
	before, err := n.Loss(x, y)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainGD(n, x, y, GDConfig{Epochs: 500, LearningRate: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss >= before {
		t.Fatalf("GD did not reduce loss: %v -> %v", before, res.FinalLoss)
	}
}

func TestGDErrors(t *testing.T) {
	n := newNet(t, 2, []int{3})
	if _, err := TrainGD(n, linalg.NewMatrix(0, 2), nil, GDConfig{}); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := TrainGD(n, linalg.NewMatrix(2, 2), []float64{1}, GDConfig{}); err == nil {
		t.Fatal("mismatched labels accepted")
	}
}

func TestSCGErrors(t *testing.T) {
	n := newNet(t, 2, []int{3})
	if _, err := TrainSCG(n, linalg.NewMatrix(0, 2), nil, SCGConfig{}); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	n := newNet(t, 2, []int{3})
	c := n.Clone()
	p := n.Params()
	p[0] += 1
	if err := n.SetParams(p); err != nil {
		t.Fatal(err)
	}
	if c.Params()[0] == n.Params()[0] {
		t.Fatal("clone aliases original")
	}
}

// Property: training is deterministic given identical seeds and data.
func TestTrainingDeterministicProperty(t *testing.T) {
	f := func(seed uint8) bool {
		x, y := xorProblem()
		a, _ := New(Config{Inputs: 2, Hidden: []int{5}, Seed: uint64(seed)})
		b, _ := New(Config{Inputs: 2, Hidden: []int{5}, Seed: uint64(seed)})
		ra, err := TrainSCG(a, x, y, SCGConfig{MaxIter: 50})
		if err != nil {
			return false
		}
		rb, err := TrainSCG(b, x, y, SCGConfig{MaxIter: 50})
		if err != nil {
			return false
		}
		return ra.FinalLoss == rb.FinalLoss && ra.Iterations == rb.Iterations
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSCGTrain(b *testing.B) {
	src := xrand.New(10)
	n := 500
	x := linalg.NewMatrix(n, 8)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < 8; j++ {
			v := src.Normal(0, 1)
			x.Set(i, j, v)
			s += v
		}
		y[i] = math.Tanh(s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, _ := New(Config{Inputs: 8, Hidden: []int{15}, Seed: uint64(i)})
		if _, err := TrainSCG(net, x, y, SCGConfig{MaxIter: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForward(b *testing.B) {
	n, _ := New(Config{Inputs: 8, Hidden: []int{20}, Seed: 1})
	in := make([]float64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Forward(in); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSCGWeightDecayShrinksWeights(t *testing.T) {
	x, y := xorProblem()
	plain, _ := New(Config{Inputs: 2, Hidden: []int{8}, Seed: 12})
	if _, err := TrainSCG(plain, x, y, SCGConfig{MaxIter: 400}); err != nil {
		t.Fatal(err)
	}
	decayed, _ := New(Config{Inputs: 2, Hidden: []int{8}, Seed: 12})
	if _, err := TrainSCG(decayed, x, y, SCGConfig{MaxIter: 400, WeightDecay: 0.05}); err != nil {
		t.Fatal(err)
	}
	norm := func(n *Network) float64 {
		s := 0.0
		for _, w := range n.Params() {
			s += w * w
		}
		return s
	}
	if norm(decayed) >= norm(plain) {
		t.Fatalf("weight decay did not shrink weights: %v vs %v", norm(decayed), norm(plain))
	}
}
