package mlp

import (
	"fmt"
	"math"

	"colocmodel/internal/linalg"
)

// SCGConfig tunes the scaled conjugate gradient trainer.
type SCGConfig struct {
	// MaxIter bounds the number of SCG iterations (weight updates plus
	// rejected steps). Default 500.
	MaxIter int
	// GradTol stops training when the gradient norm falls below it.
	// Default 1e-6.
	GradTol float64
	// LossTol stops training when the loss falls below it. Default 0.
	LossTol float64
	// WeightDecay adds an L2 penalty ½·λ·‖w‖² to the loss, shrinking
	// weights toward zero. Default 0 (the paper's models are unpenalised;
	// the option exists for regularisation ablations).
	WeightDecay float64
}

func (c *SCGConfig) defaults() {
	if c.MaxIter == 0 {
		c.MaxIter = 500
	}
	if c.GradTol == 0 {
		c.GradTol = 1e-6
	}
}

// TrainResult reports a training run.
type TrainResult struct {
	// Iterations is the number of SCG iterations executed.
	Iterations int
	// FinalLoss is the training MSE (½·mean squared error) at exit.
	FinalLoss float64
	// GradNorm is the gradient norm at exit.
	GradNorm float64
	// Converged is true if a tolerance (rather than MaxIter) ended
	// training.
	Converged bool
	// LossHistory records the loss after each accepted step.
	LossHistory []float64
}

// TrainSCG trains the network on (x, y) with Møller's scaled conjugate
// gradient algorithm (Møller 1993, "A scaled conjugate gradient algorithm
// for fast supervised learning"), the method named by Section III-D. SCG
// is a second-order batch method that avoids line searches by combining a
// Hestenes–Stiefel conjugate direction with a Levenberg–Marquardt-style
// scaling of the local curvature estimate.
func TrainSCG(n *Network, x *linalg.Matrix, y []float64, cfg SCGConfig) (*TrainResult, error) {
	cfg.defaults()
	if x.Rows == 0 {
		return nil, fmt.Errorf("mlp: no training samples")
	}

	const (
		sigma0     = 1e-4
		lambdaMin  = 1e-15
		lambdaMax  = 1e15
		firstLamda = 1e-6
	)

	w := n.Params()
	dim := len(w)

	loss, grad, err := penalizedLossGrad(n, x, y, cfg.WeightDecay)
	if err != nil {
		return nil, err
	}
	r := linalg.ScaleVec(-1, grad) // steepest descent residual
	p := append([]float64(nil), r...)
	lambda := firstLamda
	lambdaBar := 0.0
	success := true
	res := &TrainResult{LossHistory: []float64{loss}}

	var delta float64
	for k := 1; k <= cfg.MaxIter; k++ {
		res.Iterations = k
		pNorm2 := linalg.Dot(p, p)
		if pNorm2 == 0 {
			res.Converged = true
			break
		}
		if success {
			// Second-order information along p via finite differences
			// of the gradient (a Hessian-vector product estimate).
			sigma := sigma0 / math.Sqrt(pNorm2)
			wProbe := append([]float64(nil), w...)
			linalg.AXPY(sigma, p, wProbe)
			if err := n.SetParams(wProbe); err != nil {
				return nil, err
			}
			_, gradProbe, err := penalizedLossGrad(n, x, y, cfg.WeightDecay)
			if err != nil {
				return nil, err
			}
			delta = 0
			for i := 0; i < dim; i++ {
				delta += p[i] * (gradProbe[i] - grad[i]) / sigma
			}
		}
		// Scale the curvature (Levenberg-Marquardt regularisation).
		delta += (lambda - lambdaBar) * pNorm2
		if delta <= 0 {
			// Make the Hessian estimate positive definite.
			lambdaBar = 2 * (lambda - delta/pNorm2)
			delta = -delta + lambda*pNorm2
			lambda = lambdaBar
		}
		mu := linalg.Dot(p, r)
		alpha := mu / delta

		// Comparison parameter: actual vs predicted loss reduction.
		wNew := append([]float64(nil), w...)
		linalg.AXPY(alpha, p, wNew)
		if err := n.SetParams(wNew); err != nil {
			return nil, err
		}
		lossNew, err := penalizedLoss(n, x, y, cfg.WeightDecay)
		if err != nil {
			return nil, err
		}
		Delta := 2 * delta * (loss - lossNew) / (mu * mu)

		if Delta >= 0 {
			// Successful step.
			w = wNew
			loss = lossNew
			_, gradNew, err := penalizedLossGrad(n, x, y, cfg.WeightDecay)
			if err != nil {
				return nil, err
			}
			rNew := linalg.ScaleVec(-1, gradNew)
			lambdaBar = 0
			success = true
			if k%dim == 0 {
				// Restart with steepest descent.
				p = append([]float64(nil), rNew...)
			} else {
				beta := (linalg.Dot(rNew, rNew) - linalg.Dot(rNew, r)) / mu
				for i := range p {
					p[i] = rNew[i] + beta*p[i]
				}
			}
			r = rNew
			grad = gradNew
			res.LossHistory = append(res.LossHistory, loss)
			if Delta >= 0.75 {
				lambda = math.Max(lambda/4, lambdaMin)
			}
		} else {
			// Reject: restore parameters and raise damping.
			if err := n.SetParams(w); err != nil {
				return nil, err
			}
			lambdaBar = lambda
			success = false
		}
		if Delta < 0.25 {
			lambda = math.Min(lambda+delta*(1-Delta)/pNorm2, lambdaMax)
		}

		gn := linalg.Norm2(r)
		if gn <= cfg.GradTol || loss <= cfg.LossTol {
			res.Converged = true
			break
		}
	}
	if err := n.SetParams(w); err != nil {
		return nil, err
	}
	res.FinalLoss = loss
	res.GradNorm = linalg.Norm2(r)
	return res, nil
}

// penalizedLossGrad augments the MSE loss and gradient with an L2 weight
// penalty ½·λ·‖w‖².
func penalizedLossGrad(n *Network, x *linalg.Matrix, y []float64, lambda float64) (float64, []float64, error) {
	loss, grad, err := n.LossAndGrad(x, y)
	if err != nil {
		return 0, nil, err
	}
	if lambda > 0 {
		s := 0.0
		for i, w := range n.params {
			grad[i] += lambda * w
			s += w * w
		}
		loss += 0.5 * lambda * s
	}
	return loss, grad, nil
}

// penalizedLoss augments the MSE loss with the L2 weight penalty.
func penalizedLoss(n *Network, x *linalg.Matrix, y []float64, lambda float64) (float64, error) {
	loss, err := n.Loss(x, y)
	if err != nil {
		return 0, err
	}
	if lambda > 0 {
		s := 0.0
		for _, w := range n.params {
			s += w * w
		}
		loss += 0.5 * lambda * s
	}
	return loss, nil
}
