package mlp

import (
	"fmt"
	"math"

	"colocmodel/internal/linalg"
)

// SCGConfig tunes the scaled conjugate gradient trainer.
type SCGConfig struct {
	// MaxIter bounds the number of SCG iterations (weight updates plus
	// rejected steps). Default 500.
	MaxIter int
	// GradTol stops training when the gradient norm falls below it.
	// Default 1e-6.
	GradTol float64
	// LossTol stops training when the loss falls below it. Default 0.
	LossTol float64
	// WeightDecay adds an L2 penalty ½·λ·‖w‖² to the loss, shrinking
	// weights toward zero. Default 0 (the paper's models are unpenalised;
	// the option exists for regularisation ablations).
	WeightDecay float64
	// Workers > 1 opts in to row-chunked parallel loss/gradient
	// evaluation for large batches. The chunk reduction order is
	// deterministic for a fixed worker count, but its floating-point
	// grouping differs from the sequential pass, so results match the
	// default (0 or 1: sequential, bit-identical to the scalar reference)
	// to ~1e-12 rather than exactly. Leave at 0 wherever reproducibility
	// of the paper figures matters.
	Workers int
}

func (c *SCGConfig) defaults() {
	if c.MaxIter == 0 {
		c.MaxIter = 500
	}
	if c.GradTol == 0 {
		c.GradTol = 1e-6
	}
}

// TrainResult reports a training run.
type TrainResult struct {
	// Iterations is the number of SCG iterations executed.
	Iterations int
	// FinalLoss is the training MSE (½·mean squared error) at exit.
	FinalLoss float64
	// GradNorm is the gradient norm at exit.
	GradNorm float64
	// Converged is true if a tolerance (rather than MaxIter) ended
	// training.
	Converged bool
	// LossHistory records the loss after each accepted step.
	LossHistory []float64
}

const (
	scgSigma0     = 1e-4
	scgLambdaMin  = 1e-15
	scgLambdaMax  = 1e15
	scgFirstLamda = 1e-6
)

// TrainSCG trains the network on (x, y) with Møller's scaled conjugate
// gradient algorithm (Møller 1993, "A scaled conjugate gradient algorithm
// for fast supervised learning"), the method named by Section III-D. SCG
// is a second-order batch method that avoids line searches by combining a
// Hestenes–Stiefel conjugate direction with a Levenberg–Marquardt-style
// scaling of the local curvature estimate.
func TrainSCG(n *Network, x *linalg.Matrix, y []float64, cfg SCGConfig) (*TrainResult, error) {
	return TrainSCGWS(n, x, y, cfg, nil)
}

// TrainSCGWS is TrainSCG with an explicit workspace. All per-iteration
// state (parameter, gradient, residual and direction vectors plus the
// batched forward/backward scratch) lives in ws and is reused, so a warmed
// iteration performs zero heap allocations; pass the same workspace across
// bootstrap partitions or retrain attempts to amortise even the warmup.
// A nil ws uses a fresh private workspace.
func TrainSCGWS(n *Network, x *linalg.Matrix, y []float64, cfg SCGConfig, ws *Workspace) (*TrainResult, error) {
	cfg.defaults()
	if x.Rows == 0 {
		return nil, fmt.Errorf("mlp: no training samples")
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	st, err := newSCGState(n, x, y, cfg, ws)
	if err != nil {
		return nil, err
	}
	for st.k < cfg.MaxIter {
		done, err := st.step()
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	return st.finish()
}

// scgState is one SCG run's persistent state. All vectors are views into
// the workspace's scratch, swapped by pointer on accepted steps instead of
// reallocated, which is what makes step() allocation-free after warmup.
type scgState struct {
	n   *Network
	x   *linalg.Matrix
	y   []float64
	cfg SCGConfig
	ws  *Workspace

	// w holds the best accepted parameters; wScratch is overwritten by the
	// curvature probe and by each trial step (and swapped with w on
	// acceptance). grad/r are the gradient and residual at w; gradAlt/rAlt
	// receive the probe and trial values before swapping in.
	w, wScratch       []float64
	grad, gradAlt     []float64
	r, rAlt           []float64
	p                 []float64
	loss              float64
	lambda, lambdaBar float64
	delta             float64
	success           bool
	k, dim            int
	res               *TrainResult
}

func newSCGState(n *Network, x *linalg.Matrix, y []float64, cfg SCGConfig, ws *Workspace) (*scgState, error) {
	dim := n.NumParams()
	st := &scgState{n: n, x: x, y: y, cfg: cfg, ws: ws, dim: dim}
	st.w = ws.paramVec(0, dim)
	st.wScratch = ws.paramVec(1, dim)
	st.grad = ws.paramVec(2, dim)
	st.gradAlt = ws.paramVec(3, dim)
	st.r = ws.paramVec(4, dim)
	st.rAlt = ws.paramVec(5, dim)
	st.p = ws.paramVec(6, dim)
	copy(st.w, n.params)
	loss, err := st.evalLossGrad(st.grad)
	if err != nil {
		return nil, err
	}
	for i, g := range st.grad {
		st.r[i] = -1 * g // steepest descent residual
	}
	copy(st.p, st.r)
	st.loss = loss
	st.lambda = scgFirstLamda
	st.lambdaBar = 0
	st.success = true
	st.res = &TrainResult{LossHistory: make([]float64, 0, cfg.MaxIter+1)}
	st.res.LossHistory = append(st.res.LossHistory, loss)
	return st, nil
}

// step runs one SCG iteration. It reports done=true when a tolerance is
// met; the caller bounds the iteration count.
func (s *scgState) step() (bool, error) {
	s.k++
	s.res.Iterations = s.k
	pNorm2 := linalg.Dot(s.p, s.p)
	if pNorm2 == 0 {
		s.res.Converged = true
		return true, nil
	}
	if s.success {
		// Second-order information along p via finite differences of the
		// gradient (a Hessian-vector product estimate).
		sigma := scgSigma0 / math.Sqrt(pNorm2)
		copy(s.wScratch, s.w)
		linalg.AXPY(sigma, s.p, s.wScratch)
		if err := s.n.SetParams(s.wScratch); err != nil {
			return false, err
		}
		if _, err := s.evalLossGrad(s.gradAlt); err != nil {
			return false, err
		}
		delta := 0.0
		for i := 0; i < s.dim; i++ {
			delta += s.p[i] * (s.gradAlt[i] - s.grad[i]) / sigma
		}
		s.delta = delta
	}
	// Scale the curvature (Levenberg-Marquardt regularisation).
	s.delta += (s.lambda - s.lambdaBar) * pNorm2
	if s.delta <= 0 {
		// Make the Hessian estimate positive definite.
		s.lambdaBar = 2 * (s.lambda - s.delta/pNorm2)
		s.delta = -s.delta + s.lambda*pNorm2
		s.lambda = s.lambdaBar
	}
	mu := linalg.Dot(s.p, s.r)
	alpha := mu / s.delta

	// Comparison parameter: actual vs predicted loss reduction.
	copy(s.wScratch, s.w)
	linalg.AXPY(alpha, s.p, s.wScratch)
	if err := s.n.SetParams(s.wScratch); err != nil {
		return false, err
	}
	lossNew, err := s.evalLoss()
	if err != nil {
		return false, err
	}
	Delta := 2 * s.delta * (s.loss - lossNew) / (mu * mu)

	if Delta >= 0 {
		// Successful step: the trial vector becomes the new w.
		s.w, s.wScratch = s.wScratch, s.w
		s.loss = lossNew
		if err := s.acceptGrad(); err != nil {
			return false, err
		}
		for i, g := range s.gradAlt {
			s.rAlt[i] = -1 * g
		}
		s.lambdaBar = 0
		s.success = true
		if s.k%s.dim == 0 {
			// Restart with steepest descent.
			copy(s.p, s.rAlt)
		} else {
			beta := (linalg.Dot(s.rAlt, s.rAlt) - linalg.Dot(s.rAlt, s.r)) / mu
			for i := range s.p {
				s.p[i] = s.rAlt[i] + beta*s.p[i]
			}
		}
		s.r, s.rAlt = s.rAlt, s.r
		s.grad, s.gradAlt = s.gradAlt, s.grad
		s.res.LossHistory = append(s.res.LossHistory, s.loss)
		if Delta >= 0.75 {
			s.lambda = math.Max(s.lambda/4, scgLambdaMin)
		}
	} else {
		// Reject: restore parameters and raise damping.
		if err := s.n.SetParams(s.w); err != nil {
			return false, err
		}
		s.lambdaBar = s.lambda
		s.success = false
	}
	if Delta < 0.25 {
		s.lambda = math.Min(s.lambda+s.delta*(1-Delta)/pNorm2, scgLambdaMax)
	}

	gn := linalg.Norm2(s.r)
	if gn <= s.cfg.GradTol || s.loss <= s.cfg.LossTol {
		s.res.Converged = true
		return true, nil
	}
	return false, nil
}

// evalLossGrad computes the penalised loss and gradient at the network's
// current parameters, sequentially (default, bit-identical) or row-chunked
// when cfg.Workers > 1.
func (s *scgState) evalLossGrad(grad []float64) (float64, error) {
	var loss float64
	var err error
	if s.cfg.Workers > 1 {
		loss, err = s.n.LossAndGradParallel(&s.ws.pw, s.x, s.y, grad, s.cfg.Workers)
	} else {
		loss, err = s.n.LossAndGradWS(s.ws, s.x, s.y, grad)
	}
	if err != nil {
		return 0, err
	}
	return s.addDecay(loss, grad), nil
}

// evalLoss computes the penalised loss at the current parameters. In
// sequential mode it leaves the forward activations in the workspace for
// acceptGrad to reuse.
func (s *scgState) evalLoss() (float64, error) {
	var loss float64
	var err error
	if s.cfg.Workers > 1 {
		loss, err = s.n.LossParallel(&s.ws.pw, s.x, s.y, s.cfg.Workers)
	} else {
		loss, err = s.n.LossWS(s.ws, s.x, s.y)
	}
	if err != nil {
		return 0, err
	}
	return s.addDecay(loss, nil), nil
}

// acceptGrad computes the penalised gradient at the just-accepted
// parameters into gradAlt. The sequential path reuses the forward
// activations that evalLoss left in the workspace — a forward at the same
// parameters would reproduce them bit-for-bit, so only the backward pass
// runs.
func (s *scgState) acceptGrad() error {
	if s.cfg.Workers > 1 {
		_, err := s.evalLossGrad(s.gradAlt)
		return err
	}
	s.n.backwardRaw(s.ws, s.x, s.y, s.gradAlt)
	linalg.Scal(1/float64(s.x.Rows), s.gradAlt)
	s.addDecay(0, s.gradAlt)
	return nil
}

// addDecay folds the L2 weight penalty into loss and (when non-nil) grad,
// in the same order the scalar reference applied it.
func (s *scgState) addDecay(loss float64, grad []float64) float64 {
	lambda := s.cfg.WeightDecay
	if lambda <= 0 {
		return loss
	}
	sum := 0.0
	if grad != nil {
		for i, w := range s.n.params {
			grad[i] += lambda * w
			sum += w * w
		}
	} else {
		for _, w := range s.n.params {
			sum += w * w
		}
	}
	return loss + 0.5*lambda*sum
}

func (s *scgState) finish() (*TrainResult, error) {
	if err := s.n.SetParams(s.w); err != nil {
		return nil, err
	}
	s.res.FinalLoss = s.loss
	s.res.GradNorm = linalg.Norm2(s.r)
	return s.res, nil
}
