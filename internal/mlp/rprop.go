package mlp

import (
	"fmt"
	"math"

	"colocmodel/internal/linalg"
)

// RPropConfig tunes the resilient-backpropagation trainer (Riedmiller &
// Braun's iRPROP−), a third batch method alongside SCG and momentum GD
// for the trainer ablation. RProp adapts one step size per weight from
// gradient sign agreement only, making it insensitive to gradient
// magnitude scaling.
type RPropConfig struct {
	// Epochs is the number of full-batch updates. Default 200.
	Epochs int
	// EtaPlus and EtaMinus scale step sizes on sign agreement /
	// disagreement. Defaults 1.2 and 0.5.
	EtaPlus, EtaMinus float64
	// StepInit, StepMin and StepMax bound per-weight step sizes.
	// Defaults 0.01, 1e-9, 1.0.
	StepInit, StepMin, StepMax float64
	// GradTol stops training when the gradient norm falls below it.
	GradTol float64
}

func (c *RPropConfig) defaults() {
	if c.Epochs == 0 {
		c.Epochs = 200
	}
	if c.EtaPlus == 0 {
		c.EtaPlus = 1.2
	}
	if c.EtaMinus == 0 {
		c.EtaMinus = 0.5
	}
	if c.StepInit == 0 {
		c.StepInit = 0.01
	}
	if c.StepMin == 0 {
		c.StepMin = 1e-9
	}
	if c.StepMax == 0 {
		c.StepMax = 1.0
	}
	if c.GradTol == 0 {
		c.GradTol = 1e-8
	}
}

// TrainRProp trains the network with iRPROP−: per-weight step sizes grow
// while the gradient keeps its sign and shrink (with the update skipped)
// when it flips.
func TrainRProp(n *Network, x *linalg.Matrix, y []float64, cfg RPropConfig) (*TrainResult, error) {
	return TrainRPropWS(n, x, y, cfg, nil)
}

// TrainRPropWS is TrainRProp with an explicit workspace holding the
// per-weight step sizes, gradient buffers and batched forward/backward
// scratch; a warmed epoch allocates nothing. A nil ws uses a fresh
// private workspace.
func TrainRPropWS(n *Network, x *linalg.Matrix, y []float64, cfg RPropConfig, ws *Workspace) (*TrainResult, error) {
	cfg.defaults()
	if x.Rows == 0 {
		return nil, fmt.Errorf("mlp: no training samples")
	}
	if cfg.EtaMinus <= 0 || cfg.EtaMinus >= 1 || cfg.EtaPlus <= 1 {
		return nil, fmt.Errorf("mlp: RProp requires 0 < EtaMinus < 1 < EtaPlus")
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	dim := n.NumParams()
	step := ws.paramVec(0, dim)
	for i := range step {
		step[i] = cfg.StepInit
	}
	prevGrad := ws.paramVec(1, dim)
	for i := range prevGrad {
		prevGrad[i] = 0
	}
	grad := ws.paramVec(2, dim)
	res := &TrainResult{LossHistory: make([]float64, 0, cfg.Epochs)}
	for e := 0; e < cfg.Epochs; e++ {
		res.Iterations = e + 1
		loss, err := n.LossAndGradWS(ws, x, y, grad)
		if err != nil {
			return nil, err
		}
		res.LossHistory = append(res.LossHistory, loss)
		gn := linalg.Norm2(grad)
		if gn <= cfg.GradTol {
			res.Converged = true
			break
		}
		params := n.params
		for i := 0; i < dim; i++ {
			sign := prevGrad[i] * grad[i]
			switch {
			case sign > 0:
				step[i] = math.Min(step[i]*cfg.EtaPlus, cfg.StepMax)
			case sign < 0:
				step[i] = math.Max(step[i]*cfg.EtaMinus, cfg.StepMin)
				// iRPROP−: forget the gradient so the next epoch takes
				// a fresh step instead of oscillating.
				grad[i] = 0
			}
			if grad[i] > 0 {
				params[i] -= step[i]
			} else if grad[i] < 0 {
				params[i] += step[i]
			}
			prevGrad[i] = grad[i]
		}
	}
	loss, err := n.LossAndGradWS(ws, x, y, grad)
	if err != nil {
		return nil, err
	}
	res.FinalLoss = loss
	res.GradNorm = linalg.Norm2(grad)
	return res, nil
}

// TrainSCGEarlyStop trains with SCG while monitoring loss on a held-out
// validation split; it restores the parameters from the best validation
// loss seen, stopping early once validation loss has not improved for
// `patience` accepted steps. valX/valY must be disjoint from the training
// data for the stop to mean anything.
func TrainSCGEarlyStop(n *Network, x *linalg.Matrix, y []float64, valX *linalg.Matrix, valY []float64, cfg SCGConfig, patience int) (*TrainResult, error) {
	return TrainSCGEarlyStopWS(n, x, y, valX, valY, cfg, patience, nil)
}

// TrainSCGEarlyStopWS is TrainSCGEarlyStop with an explicit workspace
// shared by the SCG bursts, the validation-loss evaluations and the
// best-parameter snapshot. A nil ws uses a fresh private workspace.
func TrainSCGEarlyStopWS(n *Network, x *linalg.Matrix, y []float64, valX *linalg.Matrix, valY []float64, cfg SCGConfig, patience int, ws *Workspace) (*TrainResult, error) {
	if patience <= 0 {
		return nil, fmt.Errorf("mlp: patience must be positive, got %d", patience)
	}
	if valX == nil || valX.Rows == 0 {
		return nil, fmt.Errorf("mlp: early stopping needs a validation split")
	}
	cfg.defaults()
	if ws == nil {
		ws = NewWorkspace()
	}
	// Run SCG in short bursts, checking validation loss between bursts.
	const burst = 10
	bestVal := math.Inf(1)
	bestParams := ws.paramVec(7, n.NumParams())
	copy(bestParams, n.params)
	bad := 0
	total := &TrainResult{LossHistory: make([]float64, 0, cfg.MaxIter+1)}
	remaining := cfg.MaxIter
	for remaining > 0 {
		c := cfg
		c.MaxIter = burst
		if remaining < burst {
			c.MaxIter = remaining
		}
		r, err := TrainSCGWS(n, x, y, c, ws)
		if err != nil {
			return nil, err
		}
		total.Iterations += r.Iterations
		total.LossHistory = append(total.LossHistory, r.LossHistory...)
		remaining -= r.Iterations
		vl, err := n.LossWS(ws, valX, valY)
		if err != nil {
			return nil, err
		}
		if vl < bestVal-1e-12 {
			bestVal = vl
			copy(bestParams, n.params)
			bad = 0
		} else {
			bad++
			if bad >= patience {
				total.Converged = true
				break
			}
		}
		if r.Converged {
			total.Converged = true
			break
		}
	}
	if err := n.SetParams(bestParams); err != nil {
		return nil, err
	}
	loss, err := n.LossWS(ws, x, y)
	if err != nil {
		return nil, err
	}
	total.FinalLoss = loss
	return total, nil
}
