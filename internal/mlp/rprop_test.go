package mlp

import (
	"math"
	"testing"

	"colocmodel/internal/linalg"
	"colocmodel/internal/xrand"
)

func TestRPropSolvesXOR(t *testing.T) {
	x, y := xorProblem()
	n, _ := New(Config{Inputs: 2, Hidden: []int{8}, Seed: 14})
	res, err := TrainRProp(n, x, y, RPropConfig{Epochs: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss > 1e-2 {
		t.Fatalf("RProp failed XOR: loss %v", res.FinalLoss)
	}
}

func TestRPropReducesLoss(t *testing.T) {
	x, y := xorProblem()
	n, _ := New(Config{Inputs: 2, Hidden: []int{6}, Seed: 15})
	before, err := n.Loss(x, y)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainRProp(n, x, y, RPropConfig{Epochs: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss >= before {
		t.Fatalf("RProp did not reduce loss: %v -> %v", before, res.FinalLoss)
	}
}

func TestRPropErrors(t *testing.T) {
	n, _ := New(Config{Inputs: 2, Hidden: []int{3}, Seed: 1})
	if _, err := TrainRProp(n, linalg.NewMatrix(0, 2), nil, RPropConfig{}); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := TrainRProp(n, linalg.NewMatrix(2, 2), []float64{1, 2}, RPropConfig{EtaPlus: 0.5, EtaMinus: 0.9}); err == nil {
		t.Fatal("inverted etas accepted")
	}
}

// regressionSplit builds a noisy smooth-function dataset with a train and
// validation split.
func regressionSplit(seed uint64, nTrain, nVal int) (trX *linalg.Matrix, trY []float64, vaX *linalg.Matrix, vaY []float64) {
	src := xrand.New(seed)
	gen := func(n int) (*linalg.Matrix, []float64) {
		x := linalg.NewMatrix(n, 2)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			a, b := src.Uniform(-1, 1), src.Uniform(-1, 1)
			x.Set(i, 0, a)
			x.Set(i, 1, b)
			y[i] = math.Sin(3*a)*b + src.Normal(0, 0.15)
		}
		return x, y
	}
	trX, trY = gen(nTrain)
	vaX, vaY = gen(nVal)
	return
}

func TestEarlyStoppingRestoresBestParams(t *testing.T) {
	trX, trY, vaX, vaY := regressionSplit(16, 40, 40)
	// A deliberately over-parameterised network invited to overfit.
	n, _ := New(Config{Inputs: 2, Hidden: []int{40}, Seed: 17})
	res, err := TrainSCGEarlyStop(n, trX, trY, vaX, vaY, SCGConfig{MaxIter: 2000}, 5)
	if err != nil {
		t.Fatal(err)
	}
	valStopped, err := n.Loss(vaX, vaY)
	if err != nil {
		t.Fatal(err)
	}
	// Compare with uninterrupted training from the same start.
	full, _ := New(Config{Inputs: 2, Hidden: []int{40}, Seed: 17})
	if _, err := TrainSCG(full, trX, trY, SCGConfig{MaxIter: 2000}); err != nil {
		t.Fatal(err)
	}
	valFull, err := full.Loss(vaX, vaY)
	if err != nil {
		t.Fatal(err)
	}
	if valStopped > valFull*1.05 {
		t.Fatalf("early stopping hurt validation: %v vs full training %v", valStopped, valFull)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations recorded")
	}
}

func TestEarlyStoppingErrors(t *testing.T) {
	trX, trY, vaX, vaY := regressionSplit(18, 10, 10)
	n, _ := New(Config{Inputs: 2, Hidden: []int{4}, Seed: 1})
	if _, err := TrainSCGEarlyStop(n, trX, trY, vaX, vaY, SCGConfig{}, 0); err == nil {
		t.Fatal("zero patience accepted")
	}
	if _, err := TrainSCGEarlyStop(n, trX, trY, nil, nil, SCGConfig{}, 3); err == nil {
		t.Fatal("missing validation split accepted")
	}
}
