package mlp

import (
	"fmt"

	"colocmodel/internal/linalg"
	"colocmodel/internal/xrand"
)

// GDConfig tunes the gradient-descent baseline trainer, used by the
// ablation benchmarks to quantify what SCG buys over first-order training.
type GDConfig struct {
	// LearningRate is the step size. Default 0.01.
	LearningRate float64
	// Momentum is the classical momentum coefficient. Default 0.9.
	Momentum float64
	// Epochs is the number of full passes. Default 200.
	Epochs int
	// BatchSize is the mini-batch size; 0 means full batch.
	BatchSize int
	// Seed shuffles mini-batches.
	Seed uint64
}

func (c *GDConfig) defaults() {
	if c.LearningRate == 0 {
		c.LearningRate = 0.01
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.Epochs == 0 {
		c.Epochs = 200
	}
}

// TrainGD trains the network with mini-batch stochastic gradient descent
// plus momentum.
func TrainGD(n *Network, x *linalg.Matrix, y []float64, cfg GDConfig) (*TrainResult, error) {
	return TrainGDWS(n, x, y, cfg, nil)
}

// TrainGDWS is TrainGD with an explicit workspace: the velocity and
// gradient vectors and the batched forward/backward scratch live in ws, so
// a warmed epoch performs no heap allocations beyond the preallocated loss
// history. A nil ws uses a fresh private workspace.
func TrainGDWS(n *Network, x *linalg.Matrix, y []float64, cfg GDConfig, ws *Workspace) (*TrainResult, error) {
	cfg.defaults()
	if x.Rows == 0 {
		return nil, fmt.Errorf("mlp: no training samples")
	}
	if x.Rows != len(y) {
		return nil, fmt.Errorf("mlp: %d labels for %d samples", len(y), x.Rows)
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	batch := cfg.BatchSize
	if batch <= 0 || batch > x.Rows {
		batch = x.Rows
	}
	src := xrand.New(cfg.Seed)
	dim := n.NumParams()
	vel := ws.paramVec(0, dim)
	for i := range vel {
		vel[i] = 0
	}
	grad := ws.paramVec(1, dim)
	res := &TrainResult{LossHistory: make([]float64, 0, cfg.Epochs)}

	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	bx := linalg.NewMatrix(batch, x.Cols)
	by := make([]float64, batch)
	for e := 0; e < cfg.Epochs; e++ {
		res.Iterations = e + 1
		src.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start+batch <= len(idx); start += batch {
			for b := 0; b < batch; b++ {
				s := idx[start+b]
				copy(bx.Data[b*bx.Cols:(b+1)*bx.Cols], x.Data[s*x.Cols:(s+1)*x.Cols])
				by[b] = y[s]
			}
			if _, err := n.LossAndGradWS(ws, bx, by, grad); err != nil {
				return nil, err
			}
			params := n.params
			for i := range params {
				vel[i] = cfg.Momentum*vel[i] - cfg.LearningRate*grad[i]
				params[i] += vel[i]
			}
		}
		loss, err := n.LossWS(ws, x, y)
		if err != nil {
			return nil, err
		}
		res.LossHistory = append(res.LossHistory, loss)
	}
	loss, err := n.LossAndGradWS(ws, x, y, grad)
	if err != nil {
		return nil, err
	}
	res.FinalLoss = loss
	res.GradNorm = linalg.Norm2(grad)
	return res, nil
}
