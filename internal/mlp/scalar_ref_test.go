package mlp

// The former per-sample (scalar) implementations live on as unexported
// reference paths here. The batched kernels must reproduce them
// bit-for-bit: every accumulator in the batched pass receives its
// floating-point contributions in the same order the scalar loops applied
// them, so equality below is exact, not approximate.

import (
	"fmt"
	"math"

	"colocmodel/internal/linalg"
)

// scalarPredictBatch is the old PredictBatch: one Forward call per row.
func scalarPredictBatch(n *Network, x *linalg.Matrix) ([]float64, error) {
	if x.Cols != n.cfg.Inputs {
		return nil, fmt.Errorf("mlp: matrix has %d columns, network expects %d", x.Cols, n.cfg.Inputs)
	}
	out := make([]float64, x.Rows)
	for i := 0; i < x.Rows; i++ {
		v, err := n.Forward(x.Data[i*x.Cols : (i+1)*x.Cols])
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// scalarLoss is the old Loss built on scalarPredictBatch.
func scalarLoss(n *Network, x *linalg.Matrix, y []float64) (float64, error) {
	pred, err := scalarPredictBatch(n, x)
	if err != nil {
		return 0, err
	}
	if len(y) != len(pred) {
		return 0, fmt.Errorf("mlp: %d labels for %d samples", len(y), len(pred))
	}
	s := 0.0
	for i, p := range pred {
		d := p - y[i]
		s += d * d
	}
	return s / (2 * float64(len(y))), nil
}

// scalarLossAndGrad is the old per-sample backpropagation, verbatim.
func scalarLossAndGrad(n *Network, x *linalg.Matrix, y []float64) (float64, []float64, error) {
	if x.Cols != n.cfg.Inputs {
		return 0, nil, fmt.Errorf("mlp: matrix has %d columns, network expects %d", x.Cols, n.cfg.Inputs)
	}
	if x.Rows != len(y) {
		return 0, nil, fmt.Errorf("mlp: %d labels for %d samples", len(y), x.Rows)
	}
	grad := make([]float64, len(n.params))
	loss := 0.0
	nl := len(n.layers)
	acts := make([][]float64, nl+1)
	for s := 0; s < x.Rows; s++ {
		acts[0] = x.Data[s*x.Cols : (s+1)*x.Cols]
		for li, ly := range n.layers {
			out := make([]float64, ly.out)
			for o := 0; o < ly.out; o++ {
				sum := n.params[ly.bOff+o]
				w := n.params[ly.wOff+o*ly.in : ly.wOff+(o+1)*ly.in]
				for i, v := range acts[li] {
					sum += w[i] * v
				}
				if li == nl-1 {
					out[o] = sum
				} else {
					out[o] = n.cfg.Activation.apply(sum)
				}
			}
			acts[li+1] = out
		}
		diff := acts[nl][0] - y[s]
		loss += diff * diff
		delta := []float64{diff}
		for li := nl - 1; li >= 0; li-- {
			ly := n.layers[li]
			in := acts[li]
			for o := 0; o < ly.out; o++ {
				d := delta[o]
				if d == 0 {
					continue
				}
				g := grad[ly.wOff+o*ly.in : ly.wOff+(o+1)*ly.in]
				for i, v := range in {
					g[i] += d * v
				}
				grad[ly.bOff+o] += d
			}
			if li == 0 {
				break
			}
			prev := make([]float64, ly.in)
			for o := 0; o < ly.out; o++ {
				d := delta[o]
				if d == 0 {
					continue
				}
				w := n.params[ly.wOff+o*ly.in : ly.wOff+(o+1)*ly.in]
				for i := range prev {
					prev[i] += d * w[i]
				}
			}
			for i := range prev {
				prev[i] *= n.cfg.Activation.derivFromOutput(acts[li][i])
			}
			delta = prev
		}
	}
	inv := 1 / float64(x.Rows)
	loss *= 0.5 * inv
	for i := range grad {
		grad[i] *= inv
	}
	return loss, grad, nil
}

func scalarPenalizedLossGrad(n *Network, x *linalg.Matrix, y []float64, lambda float64) (float64, []float64, error) {
	loss, grad, err := scalarLossAndGrad(n, x, y)
	if err != nil {
		return 0, nil, err
	}
	if lambda > 0 {
		s := 0.0
		for i, w := range n.params {
			grad[i] += lambda * w
			s += w * w
		}
		loss += 0.5 * lambda * s
	}
	return loss, grad, nil
}

func scalarPenalizedLoss(n *Network, x *linalg.Matrix, y []float64, lambda float64) (float64, error) {
	loss, err := scalarLoss(n, x, y)
	if err != nil {
		return 0, err
	}
	if lambda > 0 {
		s := 0.0
		for _, w := range n.params {
			s += w * w
		}
		loss += 0.5 * lambda * s
	}
	return loss, nil
}

// scalarTrainSCG is the old allocating, sample-at-a-time TrainSCG,
// verbatim. The batched TrainSCG must reproduce its parameter trajectory
// bit-for-bit; it also anchors the old-vs-new training benchmarks.
func scalarTrainSCG(n *Network, x *linalg.Matrix, y []float64, cfg SCGConfig) (*TrainResult, error) {
	cfg.defaults()
	if x.Rows == 0 {
		return nil, fmt.Errorf("mlp: no training samples")
	}

	const (
		sigma0     = 1e-4
		lambdaMin  = 1e-15
		lambdaMax  = 1e15
		firstLamda = 1e-6
	)

	w := n.Params()
	dim := len(w)

	loss, grad, err := scalarPenalizedLossGrad(n, x, y, cfg.WeightDecay)
	if err != nil {
		return nil, err
	}
	r := linalg.ScaleVec(-1, grad)
	p := append([]float64(nil), r...)
	lambda := firstLamda
	lambdaBar := 0.0
	success := true
	res := &TrainResult{LossHistory: []float64{loss}}

	var delta float64
	for k := 1; k <= cfg.MaxIter; k++ {
		res.Iterations = k
		pNorm2 := linalg.Dot(p, p)
		if pNorm2 == 0 {
			res.Converged = true
			break
		}
		if success {
			sigma := sigma0 / math.Sqrt(pNorm2)
			wProbe := append([]float64(nil), w...)
			linalg.AXPY(sigma, p, wProbe)
			if err := n.SetParams(wProbe); err != nil {
				return nil, err
			}
			_, gradProbe, err := scalarPenalizedLossGrad(n, x, y, cfg.WeightDecay)
			if err != nil {
				return nil, err
			}
			delta = 0
			for i := 0; i < dim; i++ {
				delta += p[i] * (gradProbe[i] - grad[i]) / sigma
			}
		}
		delta += (lambda - lambdaBar) * pNorm2
		if delta <= 0 {
			lambdaBar = 2 * (lambda - delta/pNorm2)
			delta = -delta + lambda*pNorm2
			lambda = lambdaBar
		}
		mu := linalg.Dot(p, r)
		alpha := mu / delta

		wNew := append([]float64(nil), w...)
		linalg.AXPY(alpha, p, wNew)
		if err := n.SetParams(wNew); err != nil {
			return nil, err
		}
		lossNew, err := scalarPenalizedLoss(n, x, y, cfg.WeightDecay)
		if err != nil {
			return nil, err
		}
		Delta := 2 * delta * (loss - lossNew) / (mu * mu)

		if Delta >= 0 {
			w = wNew
			loss = lossNew
			_, gradNew, err := scalarPenalizedLossGrad(n, x, y, cfg.WeightDecay)
			if err != nil {
				return nil, err
			}
			rNew := linalg.ScaleVec(-1, gradNew)
			lambdaBar = 0
			success = true
			if k%dim == 0 {
				p = append([]float64(nil), rNew...)
			} else {
				beta := (linalg.Dot(rNew, rNew) - linalg.Dot(rNew, r)) / mu
				for i := range p {
					p[i] = rNew[i] + beta*p[i]
				}
			}
			r = rNew
			grad = gradNew
			res.LossHistory = append(res.LossHistory, loss)
			if Delta >= 0.75 {
				lambda = math.Max(lambda/4, lambdaMin)
			}
		} else {
			if err := n.SetParams(w); err != nil {
				return nil, err
			}
			lambdaBar = lambda
			success = false
		}
		if Delta < 0.25 {
			lambda = math.Min(lambda+delta*(1-Delta)/pNorm2, lambdaMax)
		}

		gn := linalg.Norm2(r)
		if gn <= cfg.GradTol || loss <= cfg.LossTol {
			res.Converged = true
			break
		}
	}
	if err := n.SetParams(w); err != nil {
		return nil, err
	}
	res.FinalLoss = loss
	res.GradNorm = linalg.Norm2(r)
	return res, nil
}
