// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablation benchmarks for the design choices
// DESIGN.md calls out (SCG vs. gradient descent, analytical engine vs.
// trace-driven cache, replacement policies).
//
// Dataset collection and other one-time setup run outside the timed
// region; each benchmark iteration regenerates its table or figure from
// the cached dataset. Figures 1–4 use a reduced partition count so the
// full suite stays tractable; cmd/coloexp runs the paper's full 100.
package colocmodel_test

import (
	"bytes"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"colocmodel"
	"colocmodel/internal/cache"
	"colocmodel/internal/core"
	"colocmodel/internal/experiments"
	"colocmodel/internal/features"
	"colocmodel/internal/harness"
	"colocmodel/internal/linalg"
	"colocmodel/internal/mlp"
	"colocmodel/internal/serve"
	"colocmodel/internal/simproc"
	"colocmodel/internal/workload"
	"colocmodel/internal/xrand"
)

const benchPartitions = 5

var (
	suiteOnce sync.Once
	suiteVal  *experiments.Suite
	suiteErr  error
)

// benchSuite collects both Table V datasets exactly once per process.
func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		cfg := experiments.Default()
		cfg.Partitions = benchPartitions
		suiteVal, suiteErr = experiments.NewSuite(cfg)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteVal
}

// ---- Tables ----

func BenchmarkTable1Features(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Table1(); out == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2FeatureSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Table2(); out == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable3Baselines measures the baseline campaign behind Table
// III: every application run alone at P0 on the 6-core machine.
func BenchmarkTable3Baselines(b *testing.B) {
	proc, err := simproc.New(simproc.XeonE5649())
	if err != nil {
		b.Fatal(err)
	}
	apps := workload.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range apps {
			if _, err := proc.RunBaseline(a, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable4Machines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Table4(); out == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable5TrainingSetup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Table5(); out == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable6CannealCG regenerates Table VI: the canneal-vs-cg sweep
// on the 12-core machine with linear-F and NN-F prediction error.
func BenchmarkTable6CannealCG(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Table6()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 11 {
			b.Fatalf("got %d rows", len(res.Rows))
		}
	}
}

// ---- Figures ----

// evaluateAllBench regenerates one of Figures 1–4: the full twelve-model
// repeated-random-subsampling evaluation on one machine's dataset.
func evaluateAllBench(b *testing.B, cores int) {
	s := benchSuite(b)
	ds, err := s.Dataset(cores)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.EvaluateAll(ds, core.EvalConfig{Partitions: benchPartitions, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 12 {
			b.Fatalf("got %d models", len(res))
		}
	}
}

func BenchmarkFigure1MPE6Core(b *testing.B)    { evaluateAllBench(b, 6) }
func BenchmarkFigure2MPE12Core(b *testing.B)   { evaluateAllBench(b, 12) }
func BenchmarkFigure3NRMSE6Core(b *testing.B)  { evaluateAllBench(b, 6) }
func BenchmarkFigure4NRMSE12Core(b *testing.B) { evaluateAllBench(b, 12) }

func BenchmarkFigure5aDistributions(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure5a()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 11 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

func BenchmarkFigure5bErrorDistributions(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Figure5b()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 11 {
			b.Fatalf("got %d rows", len(res.Rows))
		}
	}
}

// BenchmarkPCAFeatureRanking measures the Section III-B feature-ranking
// step.
func BenchmarkPCAFeatureRanking(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.PCARanking()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatalf("got %d features", len(rows))
		}
	}
}

// ---- Data collection ----

// BenchmarkDatasetCollection6Core measures the full Table V campaign on
// the 6-core machine (1320 simulated co-location runs plus baselines).
func BenchmarkDatasetCollection6Core(b *testing.B) {
	plan := harness.DefaultPlan(simproc.XeonE5649(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.Seed = uint64(i)
		if _, err := harness.Collect(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations ----

// BenchmarkAblationSCGTraining and BenchmarkAblationGDTraining compare
// the paper's scaled-conjugate-gradient trainer against plain momentum
// gradient descent on the same NN-F task (see also the accuracy
// comparison in internal/mlp tests).
func ablationTrainingData(b *testing.B) (*linalg.Matrix, []float64) {
	b.Helper()
	s := benchSuite(b)
	ds, err := s.Dataset(6)
	if err != nil {
		b.Fatal(err)
	}
	setF, err := features.SetByName("F")
	if err != nil {
		b.Fatal(err)
	}
	x, y, err := features.Matrix(setF, ds, ds.Records)
	if err != nil {
		b.Fatal(err)
	}
	xs := features.FitScaler(x)
	xt, err := xs.Transform(x)
	if err != nil {
		b.Fatal(err)
	}
	return xt, features.FitVecScaler(y).Transform(y)
}

func BenchmarkAblationSCGTraining(b *testing.B) {
	x, y := ablationTrainingData(b)
	ws := mlp.NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := mlp.New(mlp.Config{Inputs: x.Cols, Hidden: []int{20}, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mlp.TrainSCGWS(net, x, y, mlp.SCGConfig{MaxIter: 200}, ws); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGDTraining(b *testing.B) {
	x, y := ablationTrainingData(b)
	ws := mlp.NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := mlp.New(mlp.Config{Inputs: x.Cols, Hidden: []int{20}, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mlp.TrainGDWS(net, x, y, mlp.GDConfig{Epochs: 200, Seed: uint64(i)}, ws); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAnalyticalEngine vs BenchmarkAblationTraceDriven
// compare the cost of the epoch-analytical co-location engine against the
// trace-driven shared-cache path for the same two-app scenario.
func BenchmarkAblationAnalyticalEngine(b *testing.B) {
	proc, err := simproc.New(simproc.XeonE5649())
	if err != nil {
		b.Fatal(err)
	}
	cg, err := workload.ByName("cg")
	if err != nil {
		b.Fatal(err)
	}
	ep, err := workload.ByName("ep")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proc.RunColocation(cg, []workload.App{ep}, 0, simproc.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTraceDriven(b *testing.B) {
	proc, err := simproc.New(simproc.XeonE5649())
	if err != nil {
		b.Fatal(err)
	}
	cg, err := workload.ByName("cg")
	if err != nil {
		b.Fatal(err)
	}
	ep, err := workload.ByName("ep")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proc.TraceOccupancy([]workload.App{cg, ep}, 200000, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationReplacementPolicies compares LRU, tree-PLRU and random
// replacement under an identical reference stream.
func BenchmarkAblationReplacementPolicies(b *testing.B) {
	for _, pol := range []cache.Policy{cache.LRU, cache.TreePLRU, cache.Random} {
		b.Run(pol.String(), func(b *testing.B) {
			c, err := cache.New(cache.Config{
				SizeBytes: 1 << 20, LineBytes: 64, Ways: 16, Policy: pol, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			src := xrand.New(2)
			z := xrand.NewZipf(src, 0.9, 1<<15)
			addrs := make([]uint64, 1<<14)
			for i := range addrs {
				addrs[i] = uint64(z.Next()) * 64
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Access(0, addrs[i&(1<<14-1)])
			}
		})
	}
}

// BenchmarkPredictionLatency measures single-scenario prediction cost —
// the operation an interference-aware scheduler performs per placement
// decision.
func BenchmarkPredictionLatency(b *testing.B) {
	s := benchSuite(b)
	ds, err := s.Dataset(6)
	if err != nil {
		b.Fatal(err)
	}
	setF, err := features.SetByName("F")
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.Train(core.Spec{Technique: core.NeuralNet, FeatureSet: setF, Seed: 1}, ds, ds.Records)
	if err != nil {
		b.Fatal(err)
	}
	sc := features.Scenario{Target: "canneal", CoApps: []string{"cg", "cg", "cg"}, PState: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Extension experiments ----

// BenchmarkGeneralization measures the Section IV-B3 out-of-sample
// generalisation experiment (train NN-F, evaluate gap/unseen/mixed
// scenario families).
func BenchmarkGeneralization(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cases, err := s.Generalization()
		if err != nil {
			b.Fatal(err)
		}
		if len(cases) != 3 {
			b.Fatalf("got %d families", len(cases))
		}
	}
}

// BenchmarkMicrobenchmarkTransfer measures the validity-boundary
// experiment on the four constructed kernels.
func BenchmarkMicrobenchmarkTransfer(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.MicrobenchmarkTransfer()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("got %d kernels", len(rows))
		}
	}
}

// BenchmarkInteractionAblation measures the linear-with-interactions
// ablation.
func BenchmarkInteractionAblation(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.InteractionAblation()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkAblationBootstrapVsKFold compares the paper's repeated random
// sub-sampling protocol against k-fold cross-validation on the same
// model (see core.KFold).
func BenchmarkAblationBootstrapVsKFold(b *testing.B) {
	s := benchSuite(b)
	ds, err := s.Dataset(6)
	if err != nil {
		b.Fatal(err)
	}
	setC, err := features.SetByName("C")
	if err != nil {
		b.Fatal(err)
	}
	spec := core.Spec{Technique: core.Linear, FeatureSet: setC}
	b.Run("bootstrap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Evaluate(spec, ds, core.EvalConfig{Partitions: 10, Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kfold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.KFold(spec, ds, 10, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkModelSaveLoad measures serialising and restoring a trained
// NN-F model (the deployment artefact).
func BenchmarkModelSaveLoad(b *testing.B) {
	s := benchSuite(b)
	ds, err := s.Dataset(6)
	if err != nil {
		b.Fatal(err)
	}
	setF, err := features.SetByName("F")
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.Train(core.Spec{Technique: core.NeuralNet, FeatureSet: setF, Seed: 1}, ds, ds.Records)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := core.LoadModel(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServePredict measures the serving path of the inference
// tier: one POST /v1/predict round trip through the in-process handler,
// cold (cache disabled, full feature extraction + NN forward pass per
// request) versus cache-hit (the canonicalised-scenario memo that
// scheduling loops exercise). Future PRs track serving latency here.
func BenchmarkServePredict(b *testing.B) {
	s := benchSuite(b)
	ds, err := s.Dataset(6)
	if err != nil {
		b.Fatal(err)
	}
	setF, err := features.SetByName("F")
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.Train(core.Spec{Technique: core.NeuralNet, FeatureSet: setF, Seed: 1}, ds, ds.Records)
	if err != nil {
		b.Fatal(err)
	}
	body := []byte(`{"target":"canneal","co_apps":["cg","cg","cg"],"pstate":0}`)
	bench := func(b *testing.B, cacheSize, traceRing int) {
		reg := serve.NewRegistry()
		if err := reg.Add("bench", "", m); err != nil {
			b.Fatal(err)
		}
		h := serve.New(reg, serve.Config{CacheSize: cacheSize, TraceRing: traceRing}).Handler()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("POST", "/v1/predict", bytes.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != 200 {
				b.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
	}
	b.Run("cold", func(b *testing.B) { bench(b, -1, 0) })
	b.Run("cache-hit", func(b *testing.B) { bench(b, 65536, 0) })
	// cache-hit-untraced disables the trace ring, isolating the tracing
	// overhead of the default cache-hit path (budgeted at <5%).
	b.Run("cache-hit-untraced", func(b *testing.B) { bench(b, 65536, -1) })
}

// BenchmarkObservationIngest measures the observation-log write path
// at 64 concurrent writers: the group-commit pipeline (writers park on
// a commit queue; one committer issues a coalesced write and a single
// fsync per cohort) against the direct per-append-fsync baseline it
// replaced — kept in the code as ObservationLogConfig.Direct, so the
// speedup stays measurable. Both variants run Sync (real fsyncs): the
// amortised durability cost is the whole point.
func BenchmarkObservationIngest(b *testing.B) {
	o := colocmodel.Observation{
		Model:            "bench",
		Target:           "canneal",
		CoApps:           []string{"cg", "cg"},
		PredictedSeconds: 10,
		MeasuredSeconds:  11,
	}
	const writers = 64
	bench := func(b *testing.B, direct bool) {
		log, err := colocmodel.OpenObservationLog(colocmodel.ObservationLogConfig{
			Dir: b.TempDir(), Sync: true, Direct: direct,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer log.Close()
		b.ReportAllocs()
		b.SetParallelism((writers + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := log.Append(o); err != nil {
					b.Error(err)
					return
				}
			}
		})
	}
	b.Run("direct-fsync", func(b *testing.B) { bench(b, true) })
	b.Run("group-commit", func(b *testing.B) { bench(b, false) })
}
