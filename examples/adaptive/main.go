// Adaptive: the online adaptation loop. A deployed model is only as
// good as the workload's resemblance to its training sweep. This
// example trains a deliberately narrow incumbent (solo co-location
// only), deploys it behind the HTTP serving tier with the adaptation
// loop enabled, and then shifts the workload mix to heavy co-location:
// measured runtimes stream back via POST /v1/observations, the
// Page-Hinkley drift detector trips, and a retrained candidate —
// trained on the logged observations — is promoted only after beating
// the incumbent's holdout MPE. The whole loop runs in-process and
// deterministically.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"colocmodel"
)

func main() {
	// --- Offline: a small sweep on the 6-core machine. ---
	spec := colocmodel.XeonE5649()
	apps := make([]colocmodel.App, 0, 3)
	for _, name := range []string{"cg", "canneal", "ep"} {
		a, err := colocmodel.AppByName(name)
		if err != nil {
			log.Fatal(err)
		}
		apps = append(apps, a)
	}
	ds, err := colocmodel.CollectDataset(colocmodel.Plan{
		Spec:       spec,
		Targets:    apps,
		CoApps:     apps[:2],
		CoCounts:   []int{1, 3, 5},
		PStates:    []int{0, 1},
		NoiseSigma: 0.01,
		Seed:       17,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The incumbent sees only the solo-co-location slice: a model that
	// is accurate exactly until the workload mix changes.
	var solo, heavy []colocmodel.Record
	for _, r := range ds.Records {
		if r.NumCoLoc <= 1 {
			solo = append(solo, r)
		} else {
			heavy = append(heavy, r)
		}
	}
	setF, err := colocmodel.FeatureSetByName("F")
	if err != nil {
		log.Fatal(err)
	}
	incumbent, err := colocmodel.TrainModel(colocmodel.ModelSpec{
		Technique:  colocmodel.Linear,
		FeatureSet: setF,
		Seed:       17,
	}, ds, solo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incumbent: linear-F trained on %d solo records (of %d total)\n\n", len(solo), len(ds.Records))

	// --- Online: serve it with the adaptation loop attached. ---
	reg := colocmodel.NewModelRegistry()
	if err := reg.Add("primary", "", incumbent); err != nil {
		log.Fatal(err)
	}
	server := colocmodel.NewPredictionServer(reg, colocmodel.PredictionServerConfig{})
	obslog, err := colocmodel.OpenObservationLog(colocmodel.ObservationLogConfig{}) // in-memory; set Dir for durability
	if err != nil {
		log.Fatal(err)
	}
	soloDS := *ds
	soloDS.Records = solo
	controller, err := colocmodel.NewRetrainController(colocmodel.RetrainConfig{
		Model:           "primary",
		MinObservations: 10,
		MarginPct:       0.01,
		Seed:            17,
	}, reg, &soloDS, obslog)
	if err != nil {
		log.Fatal(err)
	}
	if err := server.EnableAdaptation(colocmodel.Adaptation{
		Log:        obslog,
		Monitor:    colocmodel.NewDriftMonitor(colocmodel.DriftConfig{Lambda: 30}),
		Controller: controller,
	}); err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	post := func(path string, body any) map[string]any {
		raw, err := json.Marshal(body)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		return out
	}
	observe := func(records []colocmodel.Record, passes int) (tripped bool) {
		for i := 0; i < passes; i++ {
			for _, r := range records {
				out := post("/v1/observations", map[string]any{
					"target":           r.Target,
					"co_apps":          coApps(r),
					"pstate":           r.PState,
					"measured_seconds": r.Seconds,
				})
				if t, _ := out["drift_tripped"].(bool); t {
					tripped = true
				}
			}
		}
		return
	}

	// Phase 1: deployment matches training. Residuals centre on zero.
	fmt.Println("phase 1: solo workload (matches training) ...")
	if observe(solo, 5) {
		log.Fatal("drift tripped on in-distribution traffic")
	}
	fmt.Println("  no drift, as expected")

	// Phase 2: the mix shifts. The detector notices the change-point.
	fmt.Println("phase 2: workload shifts to heavy co-location ...")
	if !observe(heavy, 10) {
		log.Fatal("expected the drift detector to trip")
	}
	fmt.Println("  drift detector TRIPPED")
	var report colocmodel.DriftReport
	reraw, err := http.Get(ts.URL + "/v1/drift")
	if err != nil {
		log.Fatal(err)
	}
	if err := json.NewDecoder(reraw.Body).Decode(&report); err != nil {
		log.Fatal(err)
	}
	reraw.Body.Close()
	for _, st := range report.Streams {
		fmt.Printf("  stream %s/%s: n=%d mean=%+.1f%% score=%.0f tripped=%v\n",
			st.Model, st.Target, st.Count, st.MeanPct, st.Score, st.Tripped)
	}

	// Phase 3: retrain on the augmented dataset; the gate decides.
	fmt.Println("phase 3: retraining on logged observations ...")
	res := post("/v1/retrain", map[string]any{"wait": true, "reason": "drift"})
	fmt.Printf("  candidate MPE %.2f%% vs incumbent %.2f%% -> promoted=%v (generation %v)\n",
		res["candidate_mpe"], res["incumbent_mpe"], res["promoted"], res["generation"])
	if promoted, _ := res["promoted"].(bool); !promoted {
		log.Fatal("candidate should have beaten the solo-only incumbent")
	}

	// Phase 4: the new generation serves immediately.
	pr := post("/v1/predict", map[string]any{
		"target": "canneal", "co_apps": []string{"cg", "cg", "cg"}, "pstate": 0,
	})
	fmt.Printf("\nphase 4: serving generation %v predicts canneal+3cg: %.1fs (slowdown %.2fx)\n",
		pr["generation"], pr["predicted_seconds"], pr["predicted_slowdown"])
}

// coApps reconstructs a record's co-runner name list.
func coApps(r colocmodel.Record) []string {
	out := make([]string, r.NumCoLoc)
	for i := range out {
		out[i] = r.CoApp
	}
	return out
}
