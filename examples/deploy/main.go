// Deploy: the production workflow. A model is trained once per machine
// type, serialised, and shipped to scheduling nodes, which load it and
// answer placement queries in microseconds — no dataset, simulator, or
// training needed at the point of use.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"colocmodel"
)

func main() {
	// --- Offline, once per machine type: collect, train, save. ---
	spec := colocmodel.XeonE52697v2()
	fmt.Println("offline: training neural-net-F on", spec.Name, "...")
	ds, err := colocmodel.CollectDataset(colocmodel.DefaultPlan(spec, 31))
	if err != nil {
		log.Fatal(err)
	}
	setF, err := colocmodel.FeatureSetByName("F")
	if err != nil {
		log.Fatal(err)
	}
	model, err := colocmodel.TrainModel(colocmodel.ModelSpec{
		Technique:  colocmodel.NeuralNet,
		FeatureSet: setF,
		Seed:       31,
	}, ds, ds.Records)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "colocmodel-deploy")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "e5-2697v2-nnF.json")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: model artefact %s (%d KiB)\n\n", filepath.Base(path), fi.Size()/1024)

	// --- Online, on a scheduling node: load and query. ---
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := colocmodel.LoadModel(bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("online: scheduler loaded", loaded.Spec, "- answering placement queries:")
	queries := []colocmodel.Scenario{
		{Target: "canneal", CoApps: []string{"cg", "cg"}, PState: 0},
		{Target: "ft", CoApps: []string{"streamcluster", "sp", "ep"}, PState: 0},
		{Target: "lu", CoApps: []string{"mg", "mg", "mg", "mg", "mg"}, PState: 2},
	}
	for _, q := range queries {
		sd, err := loaded.PredictedSlowdown(q)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "OK to co-locate"
		if sd > 1.20 {
			verdict = "REJECT (exceeds 20% budget)"
		}
		fmt.Printf("  %s + %v at P%d: predicted %.1f%% slowdown -> %s\n",
			q.Target, q.CoApps, q.PState, 100*(sd-1), verdict)
	}
}
