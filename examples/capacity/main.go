// Capacity planning: "how many copies of each co-runner class can share a
// machine with my application before it slows down more than X %?"
//
// This is the consolidation question from the paper's introduction: the
// model answers it from baselines alone, without running a single
// co-location experiment for the target.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"colocmodel"
)

func main() {
	spec := colocmodel.XeonE52697v2() // the 12-core machine
	fmt.Println("training neural-net-F predictor on", spec.Name, "...")
	ds, err := colocmodel.CollectDataset(colocmodel.DefaultPlan(spec, 11))
	if err != nil {
		log.Fatal(err)
	}
	setF, err := colocmodel.FeatureSetByName("F")
	if err != nil {
		log.Fatal(err)
	}
	model, err := colocmodel.TrainModel(colocmodel.ModelSpec{
		Technique:  colocmodel.NeuralNet,
		FeatureSet: setF,
		Seed:       11,
	}, ds, ds.Records)
	if err != nil {
		log.Fatal(err)
	}

	const budget = 1.20 // tolerate at most 20 % slowdown
	targets := []string{"canneal", "fluidanimate", "cg", "ep"}
	coApps := []string{"cg", "sp", "fluidanimate", "ep"}

	fmt.Printf("\nmax co-runner copies keeping each target within %.0f%% slowdown (P0):\n\n", 100*(budget-1))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "target \\ co-runner")
	for _, co := range coApps {
		fmt.Fprintf(w, "\t%s", co)
	}
	fmt.Fprintln(w)
	for _, target := range targets {
		fmt.Fprintf(w, "%s", target)
		for _, co := range coApps {
			fmt.Fprintf(w, "\t%s", capacity(model, spec, target, co, budget))
		}
		fmt.Fprintln(w)
	}
	w.Flush()

	// Also show the predicted slowdown curve for one pair, the Table VI
	// view of the same data.
	fmt.Printf("\npredicted slowdown of canneal vs. number of cg co-runners:\n")
	for k := 1; k <= spec.Cores-1; k++ {
		sd, err := predictSlowdown(model, "canneal", "cg", k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%2d: %.3f\n", k, sd)
	}
}

// capacity returns the largest k with predicted slowdown within budget,
// as a string ("11+" when even a full machine fits).
func capacity(model *colocmodel.Model, spec colocmodel.MachineSpec, target, co string, budget float64) string {
	maxK := spec.Cores - 1
	for k := 1; k <= maxK; k++ {
		sd, err := predictSlowdown(model, target, co, k)
		if err != nil {
			log.Fatal(err)
		}
		if sd > budget {
			return fmt.Sprint(k - 1)
		}
	}
	return fmt.Sprintf("%d+", maxK)
}

func predictSlowdown(model *colocmodel.Model, target, co string, k int) (float64, error) {
	coApps := make([]string, k)
	for i := range coApps {
		coApps[i] = co
	}
	return model.PredictedSlowdown(colocmodel.Scenario{Target: target, CoApps: coApps, PState: 0})
}
