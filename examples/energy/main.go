// Energy: the extension the paper's conclusion proposes. Execution-time
// predictions under co-location feed a P-state power model, estimating
// (a) the energy cost of memory interference and (b) the energy/
// performance trade-off across P-states for a co-located run.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"colocmodel"
)

func main() {
	spec := colocmodel.XeonE5649()
	fmt.Println("training neural-net-F predictor on", spec.Name, "...")
	ds, err := colocmodel.CollectDataset(colocmodel.DefaultPlan(spec, 23))
	if err != nil {
		log.Fatal(err)
	}
	setF, err := colocmodel.FeatureSetByName("F")
	if err != nil {
		log.Fatal(err)
	}
	model, err := colocmodel.TrainModel(colocmodel.ModelSpec{
		Technique:  colocmodel.NeuralNet,
		FeatureSet: setF,
		Seed:       23,
	}, ds, ds.Records)
	if err != nil {
		log.Fatal(err)
	}
	est, err := colocmodel.NewEnergyEstimator(spec)
	if err != nil {
		log.Fatal(err)
	}

	// (a) The energy cost of interference: canneal alone vs. with
	//     increasingly memory-hungry neighbours, all at P0.
	fmt.Println("\nenergy attributed to canneal at P0 (per run):")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "co-located with\tpredicted time\tenergy\tinterference overhead\tconsolidation saving")
	for _, co := range [][]string{{"ep"}, {"sp"}, {"cg"}, {"cg", "cg", "cg"}} {
		e, err := colocmodel.PredictTargetEnergy(model, est, colocmodel.Scenario{
			Target: "canneal", CoApps: co, PState: 0,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%v\t%.0f s\t%.1f kJ\t%+.1f kJ\t%.1f kJ\n",
			co, e.PredictedSeconds, e.TargetEnergyJ/1000,
			e.InterferenceOverheadJ/1000, e.ConsolidationSavingJ/1000)
	}
	w.Flush()

	// (b) P-state sweep: running slower costs time but saves power; the
	//     product shows where the energy minimum sits for a co-located
	//     canneal.
	fmt.Println("\ncanneal + 2 cg across P-states:")
	sweep, err := colocmodel.SweepEnergyPStates(model, est, colocmodel.Scenario{
		Target: "canneal", CoApps: []string{"cg", "cg"},
	})
	if err != nil {
		log.Fatal(err)
	}
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "P-state\tfreq\tpredicted time\ttarget energy")
	for ps, e := range sweep {
		st, err := spec.PStates.State(ps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "P%d\t%.2f GHz\t%.0f s\t%.1f kJ\n",
			ps, st.FreqGHz, e.PredictedSeconds, e.TargetEnergyJ/1000)
	}
	w.Flush()
}
