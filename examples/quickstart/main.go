// Quickstart: collect a training dataset on the simulated 6-core Xeon,
// train the paper's most accurate model (neural network, feature set F),
// and predict the slowdown of a scenario the model has never seen.
package main

import (
	"fmt"
	"log"

	"colocmodel"
)

func main() {
	// 1. Pick a machine (Table IV) and collect the Table V training
	//    data: every application co-located with homogeneous copies of
	//    the four representative co-runners, across six P-states.
	spec := colocmodel.XeonE5649()
	plan := colocmodel.DefaultPlan(spec, 42)
	fmt.Printf("collecting %d co-location runs on %s...\n", plan.RunCount(), spec.Name)
	ds, err := colocmodel.CollectDataset(plan)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train the neural-network model on feature set F (all eight
	//    Table I features).
	setF, err := colocmodel.FeatureSetByName("F")
	if err != nil {
		log.Fatal(err)
	}
	model, err := colocmodel.TrainModel(colocmodel.ModelSpec{
		Technique:  colocmodel.NeuralNet,
		FeatureSet: setF,
		Seed:       1,
	}, ds, ds.Records)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Predict slowdowns for scenarios. Note that the model needs only
	//    baseline measurements — it never observed these co-locations.
	fmt.Println("\npredicted slowdown of canneal at P0 under co-location:")
	for _, co := range [][]string{
		{"ep"},
		{"sp", "sp"},
		{"cg", "cg"},
		{"cg", "cg", "cg", "cg", "cg"},
	} {
		sc := colocmodel.Scenario{Target: "canneal", CoApps: co, PState: 0}
		slow, err := model.PredictedSlowdown(sc)
		if err != nil {
			log.Fatal(err)
		}
		secs, err := model.Predict(sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  with %v: %.1f s (%.1f%% slower than alone)\n", co, secs, 100*(slow-1))
	}

	// 4. Verify one prediction against the simulator (ground truth).
	proc, err := colocmodel.NewProcessor(spec)
	if err != nil {
		log.Fatal(err)
	}
	canneal, err := colocmodel.AppByName("canneal")
	if err != nil {
		log.Fatal(err)
	}
	cg, err := colocmodel.AppByName("cg")
	if err != nil {
		log.Fatal(err)
	}
	co := []colocmodel.App{cg, cg, cg, cg, cg}
	run, err := proc.RunColocation(canneal, co, 0, colocmodel.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	pred, err := model.Predict(colocmodel.Scenario{
		Target: "canneal",
		CoApps: []string{"cg", "cg", "cg", "cg", "cg"},
		PState: 0,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncanneal + 5 cg: predicted %.1f s, simulated %.1f s (%.1f%% error)\n",
		pred, run.TargetSeconds, 100*(pred-run.TargetSeconds)/run.TargetSeconds)
}
