// Scheduler: the application the paper motivates — interference-aware job
// placement. A batch of jobs is packed onto 6-core machines twice: once
// interference-blind (dense packing), once guided by the trained model
// under a 15 % slowdown QoS bound. Both assignments are then *measured*
// on the simulator, showing how prediction accuracy turns into fewer QoS
// violations.
package main

import (
	"fmt"
	"log"

	"colocmodel"
)

func main() {
	spec := colocmodel.XeonE5649()

	// Train the predictor once from baseline + training data.
	fmt.Println("training neural-net-F predictor on", spec.Name, "...")
	ds, err := colocmodel.CollectDataset(colocmodel.DefaultPlan(spec, 7))
	if err != nil {
		log.Fatal(err)
	}
	setF, err := colocmodel.FeatureSetByName("F")
	if err != nil {
		log.Fatal(err)
	}
	model, err := colocmodel.TrainModel(colocmodel.ModelSpec{
		Technique:  colocmodel.NeuralNet,
		FeatureSet: setF,
		Seed:       7,
	}, ds, ds.Records)
	if err != nil {
		log.Fatal(err)
	}

	// A job mix: one third memory hogs, one third moderate, one third
	// CPU bound.
	jobs := []string{
		"cg", "cg", "streamcluster", "mg",
		"canneal", "sp", "ft", "canneal",
		"ep", "blackscholes", "ep", "blackscholes",
	}
	const qos = 1.15 // each job may slow down at most 15 %

	oblivious := colocmodel.ScheduleOblivious(spec, jobs)
	aware, err := colocmodel.ScheduleAware(model, spec, jobs, colocmodel.AwareConfig{
		MaxSlowdown: qos,
		PState:      0,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, c := range []struct {
		name string
		asg  colocmodel.SchedAssignment
	}{
		{"interference-oblivious (dense packing)", oblivious},
		{"interference-aware (model-guided)", aware},
	} {
		ev, err := colocmodel.MeasureAssignment(spec, c.asg, 0, qos)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n", c.name)
		for mi, machineJobs := range c.asg {
			fmt.Printf("  machine %d: %v\n", mi, machineJobs)
		}
		fmt.Printf("  machines used:       %d\n", ev.MachinesUsed)
		fmt.Printf("  measured mean slowdown:  %.3f\n", ev.MeanSlowdown)
		fmt.Printf("  measured worst slowdown: %.3f\n", ev.WorstSlowdown)
		fmt.Printf("  QoS violations (> %.0f%%): %d of %d jobs\n",
			100*(qos-1), ev.Violations, len(jobs))
	}

	// Batch mode: twice the jobs on a fixed two-machine fleet, so jobs
	// queue, finish, and refill cores — the interference landscape shifts
	// over time and the policies separate on makespan and violations.
	batch := append(append([]string{}, jobs...), jobs...)
	fmt.Printf("\nbatch simulation: %d jobs on a 2-machine fleet:\n", len(batch))
	for _, pol := range []struct {
		name   string
		config colocmodel.BatchConfig
	}{
		{"pack-first", colocmodel.BatchConfig{Machines: 2, Policy: colocmodel.PackFirst, MaxSlowdown: qos}},
		{"aware-spread", colocmodel.BatchConfig{Machines: 2, Policy: colocmodel.AwareSpread, Model: model, MaxSlowdown: qos}},
	} {
		res, err := colocmodel.SimulateBatch(spec, batch, pol.config)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s makespan %.0f s, mean slowdown %.3f, worst %.3f, violations %d/%d, fleet energy %.2f MJ\n",
			pol.name, res.MakespanSeconds, res.MeanSlowdown, res.WorstSlowdown,
			res.Violations, len(batch), res.EnergyJ/1e6)
	}
}
