// Package colocmodel is a library for co-location aware application
// performance modeling on multicore processors, reproducing the
// methodology of Dauwe et al., "A Methodology for Co-Location Aware
// Application Performance Modeling in Multicore Computing" (IPDPS
// workshops, 2015).
//
// The library predicts the execution-time degradation a target
// application suffers when co-located with other applications on cores of
// the same multicore processor, caused by contention in the shared
// last-level cache and DRAM. Models need only a single serial baseline
// measurement per application; at schedule time they predict co-located
// execution time for any combination of applications, co-runner counts,
// and P-states.
//
// # Quickstart
//
//	spec := colocmodel.XeonE5649()
//	ds, err := colocmodel.CollectDataset(colocmodel.DefaultPlan(spec, 42))
//	...
//	set, _ := colocmodel.FeatureSetByName("F")
//	model, err := colocmodel.TrainModel(colocmodel.ModelSpec{
//	    Technique:  colocmodel.NeuralNet,
//	    FeatureSet: set,
//	}, ds, ds.Records)
//	...
//	slowdown, err := model.PredictedSlowdown(colocmodel.Scenario{
//	    Target: "canneal",
//	    CoApps: []string{"cg", "cg", "cg"},
//	    PState: 0,
//	})
//
// The packages under internal/ contain the full substrate: the multicore
// processor simulator (internal/simproc), cache and DRAM models
// (internal/cache, internal/dram), synthetic workloads
// (internal/workload), the data-collection harness (internal/harness),
// and the from-scratch ML kernel (internal/linalg, internal/linreg,
// internal/mlp, internal/pca). This facade re-exports the stable surface
// that the examples and command-line tools build on.
package colocmodel

import (
	"context"
	"io"

	"colocmodel/internal/core"
	"colocmodel/internal/drift"
	"colocmodel/internal/energy"
	"colocmodel/internal/features"
	"colocmodel/internal/feedback"
	"colocmodel/internal/fleetobs"
	"colocmodel/internal/harness"
	"colocmodel/internal/loadgen"
	"colocmodel/internal/obs"
	"colocmodel/internal/placement"
	"colocmodel/internal/retrain"
	"colocmodel/internal/sched"
	"colocmodel/internal/serve"
	"colocmodel/internal/simproc"
	"colocmodel/internal/workload"
)

// Re-exported machine and workload model types.
type (
	// MachineSpec describes a multicore processor (Table IV).
	MachineSpec = simproc.Spec
	// Processor simulates one multicore machine.
	Processor = simproc.Processor
	// RunResult reports one simulated (co-located) execution.
	RunResult = simproc.Result
	// RunOptions tunes a simulated run.
	RunOptions = simproc.Options
	// App is a synthetic application model (Table III).
	App = workload.App
	// AppClass is a Table III memory-intensity class.
	AppClass = workload.Class
)

// Re-exported data-collection types.
type (
	// Plan describes a Table V data-collection campaign.
	Plan = harness.Plan
	// Dataset holds baselines plus co-location measurements.
	Dataset = harness.Dataset
	// Baseline is one application's serial baseline measurement.
	Baseline = harness.Baseline
	// Record is one co-location measurement.
	Record = harness.Record
)

// Re-exported modeling types.
type (
	// ModelSpec identifies one of the twelve models (technique ×
	// feature set).
	ModelSpec = core.Spec
	// Model is a trained co-location performance predictor.
	Model = core.Model
	// CompiledModel is a model specialised into a fused, allocation-free
	// predict closure (Model.Compile). Model.Predict and
	// Model.PredictScenarios already dispatch through a pooled compiled
	// instance; hold a CompiledModel directly when one goroutine issues
	// many predictions and the pool round-trip matters. Not safe for
	// concurrent use.
	CompiledModel = core.Compiled
	// Technique selects linear or neural-network modeling.
	Technique = core.Technique
	// FeatureSet is a Table II feature group.
	FeatureSet = features.Set
	// Feature is one of the eight Table I features.
	Feature = features.Feature
	// Scenario is a schedule-time co-location description.
	Scenario = features.Scenario
	// EvalConfig tunes repeated random sub-sampling validation.
	EvalConfig = core.EvalConfig
	// EvalResult aggregates a model's accuracy across partitions.
	EvalResult = core.EvalResult
)

// Re-exported application-layer types.
type (
	// SchedAssignment maps machines to placed applications.
	SchedAssignment = sched.Assignment
	// SchedEvaluation reports measured assignment quality.
	SchedEvaluation = sched.Evaluation
	// AwareConfig tunes the interference-aware packer.
	AwareConfig = sched.AwareConfig
	// BatchConfig tunes the discrete-event batch scheduler simulation.
	BatchConfig = sched.BatchConfig
	// BatchResult reports a batch simulation.
	BatchResult = sched.BatchResult
	// BatchPolicy selects the batch placement rule.
	BatchPolicy = sched.BatchPolicy
	// EnergyEstimator computes P-state package power.
	EnergyEstimator = energy.Estimator
	// EnergyEstimate is a predicted per-run energy account.
	EnergyEstimate = energy.Estimate
)

// Re-exported serving-tier types (cmd/coloserve is the packaged
// binary; these let programs embed the inference tier directly).
type (
	// PredictionServer is the HTTP JSON inference server: registry +
	// prediction cache + metrics behind /v1/predict, /v1/predict/batch,
	// /v1/schedule, /v1/models, /healthz and /metrics.
	PredictionServer = serve.Server
	// PredictionServerConfig tunes timeouts, cache size and batch
	// fan-out.
	PredictionServerConfig = serve.Config
	// ModelRegistry holds named trained models with atomic hot-swap.
	ModelRegistry = serve.Registry
	// ServedModelInfo describes one registry entry.
	ServedModelInfo = serve.ModelInfo
	// ServeMetrics is the serving tier's Prometheus-rendered metrics
	// layer.
	ServeMetrics = serve.Metrics
)

// Re-exported adaptation-loop types (the online feedback path: logged
// observations → drift detection → gated background retraining).
type (
	// Adaptation bundles the observation log, drift monitor and
	// retraining controller a PredictionServer wires together via
	// EnableAdaptation.
	Adaptation = serve.Adaptation
	// Observation is one logged predicted-vs-measured runtime.
	Observation = feedback.Observation
	// ObservationStore is the observation-log interface the adaptation
	// loop consumes: durable file-backed group-commit log, in-memory
	// ring, or object-store-backed.
	ObservationStore = feedback.Store
	// ObservationLog is the durable, checksummed, file-backed
	// group-commit observation log (what OpenObservationLog returns
	// for a non-empty Dir).
	ObservationLog = feedback.Log
	// ObservationCommit describes the group commit that made an
	// AppendBatch durable.
	ObservationCommit = feedback.Commit
	// ObservationIngestStats is a snapshot of the ingest pipeline's
	// cumulative counters and histograms.
	ObservationIngestStats = feedback.IngestStats
	// ObservationRetention is the size/age retention bound enforced by
	// the log's compactor.
	ObservationRetention = feedback.Retention
	// ObservationLogConfig tunes segment rotation, the in-memory ring,
	// the group-commit queue, compaction and retention.
	ObservationLogConfig = feedback.Config
	// DriftMonitor watches per-(model × target) residual streams with
	// Welford moments and a two-sided Page–Hinkley detector.
	DriftMonitor = drift.Monitor
	// DriftConfig tunes the detector.
	DriftConfig = drift.Config
	// DriftReport is the monitor's queryable state.
	DriftReport = drift.Report
	// RetrainController runs gated background retraining: candidates
	// train on logged observations and promote only when they beat the
	// incumbent's holdout MPE by a margin.
	RetrainController = retrain.Controller
	// RetrainConfig tunes the controller.
	RetrainConfig = retrain.Config
	// RetrainResult reports one retraining attempt.
	RetrainResult = retrain.Result
	// RetrainStatus is the controller's queryable state.
	RetrainStatus = retrain.Status
)

// Re-exported load-generation types (cmd/coloload is the packaged
// binary; these let programs soak an embedded PredictionServer).
type (
	// LoadConfig tunes one load run (mode, rate, concurrency, warmup,
	// seed, mix, generation checking).
	LoadConfig = loadgen.Config
	// LoadMix tunes the generated traffic: Zipf scenario skew and the
	// relative weights of predict / batch / observe / reload operations.
	LoadMix = loadgen.Mix
	// LoadMode selects open-loop (fixed arrival rate) or closed-loop
	// (fixed concurrency) driving.
	LoadMode = loadgen.Mode
	// LoadSpace enumerates a served model's scenario universe for
	// sampling.
	LoadSpace = loadgen.Space
	// LoadDoer executes generated requests: over HTTP (NewHTTPLoadDoer)
	// or directly against a handler in process.
	LoadDoer = loadgen.Doer
	// LoadReport is the measured outcome: latency quantiles,
	// throughput, error and status breakdowns, per-op counts.
	LoadReport = loadgen.Report
	// LoadSLO is the pass/fail gate over a report.
	LoadSLO = loadgen.SLO
)

// Re-exported fleet-observability types (the cross-process tracing,
// telemetry-merge and SLO machinery behind coloserve's and colorouter's
// /v1/traces, /v1/fleet/metrics and /v1/slo endpoints).
type (
	// SLOTracker scores requests against an availability-plus-latency
	// objective in lock-free multi-window burn-rate rings.
	SLOTracker = obs.SLOTracker
	// SLOTrackerConfig tunes the objective, latency target and windows.
	SLOTrackerConfig = obs.SLOConfig
	// SLOStatus is a tracker's verdict: per-window burn rates and an
	// ok | warn | page state.
	SLOStatus = obs.SLOStatus
	// TraceContext is a decoded W3C traceparent: the trace identity a
	// request carries across processes.
	TraceContext = obs.TraceContext
	// FleetDoc is one parsed Prometheus text document, mergeable across
	// backends.
	FleetDoc = fleetobs.Doc
	// FleetAggregator scrapes a fleet's /metrics endpoints and merges
	// them into one document with per-backend deltas.
	FleetAggregator = fleetobs.Aggregator
	// FleetScrape is one aggregated scrape: the merged document plus
	// per-backend readings, deltas and error rates.
	FleetScrape = fleetobs.FleetScrape
)

// NewSLOTracker builds a burn-rate tracker; zero-value windows default
// to 5 minutes / 1 hour.
func NewSLOTracker(cfg SLOTrackerConfig) *SLOTracker { return obs.NewSLOTracker(cfg) }

// ParseTraceparent decodes a W3C traceparent header value.
func ParseTraceparent(h string) (TraceContext, bool) { return obs.ParseTraceparent(h) }

// ParseFleetMetrics parses one Prometheus text document (as served by
// /metrics or /v1/fleet/metrics).
func ParseFleetMetrics(r io.Reader) (*FleetDoc, error) { return fleetobs.Parse(r) }

// MergeFleetMetrics merges per-backend documents: counters and
// histograms sum, gauges are re-labelled per backend. backends[i]
// names docs[i].
func MergeFleetMetrics(backends []string, docs []*FleetDoc) *FleetDoc {
	return fleetobs.Merge(backends, docs)
}

// Load-driving mode constants.
const (
	// ClosedLoopLoad runs a fixed number of workers back-to-back.
	ClosedLoopLoad = loadgen.ClosedLoop
	// OpenLoopLoad issues requests at a fixed arrival rate, measuring
	// latency from scheduled arrival (no coordinated omission).
	OpenLoopLoad = loadgen.OpenLoop
)

// NewLoadSpace enumerates the scenario universe to sample load from.
func NewLoadSpace(apps []string, pstates, maxCo int) (*LoadSpace, error) {
	return loadgen.NewSpace(apps, pstates, maxCo)
}

// LoadSpaceFromModel builds the space served by a registry entry.
func LoadSpaceFromModel(info ServedModelInfo, maxCo int) (*LoadSpace, error) {
	return loadgen.SpaceFromModel(info, maxCo)
}

// NewHTTPLoadDoer returns a LoadDoer that drives a live server.
func NewHTTPLoadDoer(base string) LoadDoer { return loadgen.NewHTTPDoer(base) }

// RunLoad executes one load run against a Doer and returns the report.
func RunLoad(cfg LoadConfig, d LoadDoer, space *LoadSpace) (*LoadReport, error) {
	return loadgen.Run(cfg, d, space)
}

// Modeling technique constants.
const (
	// Linear is least-squares linear regression (Eq. 1).
	Linear = core.Linear
	// NeuralNet is the SCG-trained feed-forward network.
	NeuralNet = core.NeuralNet
)

// Batch placement policies.
const (
	// PackFirst fills machines densely, interference-blind.
	PackFirst = sched.PackFirst
	// AwareSpread consults the model before every placement.
	AwareSpread = sched.AwareSpread
)

// Application class constants (Table III).
const (
	ClassI   = workload.ClassI
	ClassII  = workload.ClassII
	ClassIII = workload.ClassIII
	ClassIV  = workload.ClassIV
)

// XeonE5649 returns the 6-core Table IV machine.
func XeonE5649() MachineSpec { return simproc.XeonE5649() }

// XeonE52697v2 returns the 12-core Table IV machine.
func XeonE52697v2() MachineSpec { return simproc.XeonE52697v2() }

// Machines returns both Table IV machines.
func Machines() []MachineSpec { return simproc.Machines() }

// NewProcessor constructs a simulated processor from a spec.
func NewProcessor(spec MachineSpec) (*Processor, error) { return simproc.New(spec) }

// Apps returns the eleven Table III applications.
func Apps() []App { return workload.All() }

// AppByName returns the named Table III application.
func AppByName(name string) (App, error) { return workload.ByName(name) }

// TrainingCoApps returns the four representative co-location applications
// (cg, sp, fluidanimate, ep).
func TrainingCoApps() []App { return workload.TrainingCoApps() }

// DefaultPlan returns the paper's Table V campaign for a machine.
func DefaultPlan(spec MachineSpec, seed uint64) Plan { return harness.DefaultPlan(spec, seed) }

// CollectDataset executes a data-collection plan on the simulator.
func CollectDataset(p Plan) (*Dataset, error) { return harness.Collect(p) }

// FeatureSets returns the six Table II feature sets A–F.
func FeatureSets() []FeatureSet { return features.Sets() }

// FeatureSetByName returns a Table II set by letter.
func FeatureSetByName(name string) (FeatureSet, error) { return features.SetByName(name) }

// AllModelSpecs returns the twelve Section V model specs.
func AllModelSpecs(seed uint64) []ModelSpec { return core.AllSpecs(seed) }

// TrainModel fits one model on the given records.
func TrainModel(spec ModelSpec, ds *Dataset, records []Record) (*Model, error) {
	return core.Train(spec, ds, records)
}

// EvaluateModel runs the repeated random sub-sampling protocol for one
// model spec.
func EvaluateModel(spec ModelSpec, ds *Dataset, cfg EvalConfig) (*EvalResult, error) {
	return core.Evaluate(spec, ds, cfg)
}

// EvaluateAllModels evaluates the twelve Section V models.
func EvaluateAllModels(ds *Dataset, cfg EvalConfig) ([]*EvalResult, error) {
	return core.EvaluateAll(ds, cfg)
}

// LoadModel reads a model previously written by Model.Save: the
// deployable artefact a resource manager ships to scheduling nodes.
// Loaded models are compiled for the inference fast path on load.
func LoadModel(r io.Reader) (*Model, error) { return core.LoadModel(r) }

// CompileModel specialises a model into a single-goroutine compiled
// predict closure, bit-for-bit equal to the interpreted path.
func CompileModel(m *Model) (*CompiledModel, error) { return m.Compile() }

// NewModelRegistry returns an empty model registry for serving.
func NewModelRegistry() *ModelRegistry { return serve.NewRegistry() }

// NewPredictionServer builds an HTTP inference server around a
// registry; its Handler, Serve and ListenAndServe methods run it.
func NewPredictionServer(reg *ModelRegistry, cfg PredictionServerConfig) *PredictionServer {
	return serve.New(reg, cfg)
}

// OpenObservationLog opens (or recovers) an observation store: the
// durable file-backed group-commit log when cfg.Dir is set, a
// memory-only store otherwise.
func OpenObservationLog(cfg ObservationLogConfig) (ObservationStore, error) {
	return feedback.Open(cfg)
}

// NewDriftMonitor returns an empty residual drift monitor.
func NewDriftMonitor(cfg DriftConfig) *DriftMonitor { return drift.NewMonitor(cfg) }

// NewRetrainController builds a gated retraining controller over a
// registry, an optional offline dataset, and an observation store.
func NewRetrainController(cfg RetrainConfig, reg *ModelRegistry, base *Dataset, obs ObservationStore) (*RetrainController, error) {
	return retrain.New(cfg, reg, base, obs)
}

// ScheduleOblivious packs jobs interference-blind.
func ScheduleOblivious(spec MachineSpec, jobs []string) SchedAssignment {
	return sched.Oblivious(spec, jobs)
}

// ScheduleAware packs jobs using model predictions under a QoS bound.
func ScheduleAware(model *Model, spec MachineSpec, jobs []string, cfg AwareConfig) (SchedAssignment, error) {
	return sched.GreedyAware(model, spec, jobs, cfg)
}

// MeasureAssignment runs an assignment on the simulator and reports the
// jobs' actual slowdowns against a QoS bound.
func MeasureAssignment(spec MachineSpec, asg SchedAssignment, pstate int, qosBound float64) (*SchedEvaluation, error) {
	return sched.Measure(spec, asg, pstate, qosBound)
}

// SimulateBatch drains a job queue onto a fleet with dynamic co-location
// (jobs finish, cores refill, interference shifts) and reports makespan,
// slowdowns, violations and fleet energy.
func SimulateBatch(spec MachineSpec, jobs []string, cfg BatchConfig) (*BatchResult, error) {
	return sched.SimulateBatch(spec, jobs, cfg)
}

// Placement optimizer types (the what-if scheduling product: fleet +
// pending apps -> seeded assignment and P-state choice minimising
// predicted degradation or energy).
type (
	// PlacementProblem is one optimizer instance: model, fleet, apps,
	// objective, QoS bound, seed and search knobs.
	PlacementProblem = placement.Problem
	// PlacementMachine describes one fleet machine: spec, usable cores,
	// allowed P-states.
	PlacementMachine = placement.Machine
	// PlacementPlan is a complete placement with its predicted account
	// (per-app slowdown/degradation, per-machine P-states, totals).
	PlacementPlan = placement.Plan
	// PlacementResult pairs the best plan with search statistics.
	PlacementResult = placement.Result
	// PlacementObjective selects what the optimizer minimises.
	PlacementObjective = placement.Objective
)

// Placement objective constants.
const (
	// MinDegradation minimises total predicted degradation (default).
	MinDegradation = placement.MinDegradation
	// MinEnergy minimises total predicted machine energy.
	MinEnergy = placement.MinEnergy
)

// OptimizePlacement searches for the best assignment of apps to the
// fleet; onImprove (optional) observes each improving plan as the
// seeded local search finds it.
func OptimizePlacement(ctx context.Context, prob PlacementProblem, onImprove func(*PlacementPlan)) (*PlacementResult, error) {
	return placement.Optimize(ctx, prob, onImprove)
}

// PackFirstPlacement is the interference-oblivious baseline: fill
// machines in order at their first allowed P-state.
func PackFirstPlacement(ctx context.Context, prob PlacementProblem) (*PlacementPlan, error) {
	return placement.PackFirst(ctx, prob)
}

// NewEnergyEstimator returns a package-power estimator for a machine.
func NewEnergyEstimator(spec MachineSpec) (*EnergyEstimator, error) {
	return energy.NewEstimator(spec)
}

// PredictTargetEnergy predicts a target's energy use under co-location.
func PredictTargetEnergy(model *Model, e *EnergyEstimator, sc Scenario) (*EnergyEstimate, error) {
	return energy.PredictTargetEnergy(model, e, sc)
}

// SweepEnergyPStates predicts target energy at every P-state.
func SweepEnergyPStates(model *Model, e *EnergyEstimator, sc Scenario) ([]*EnergyEstimate, error) {
	return energy.SweepPStates(model, e, sc)
}
