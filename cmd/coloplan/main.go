// Command coloplan runs the co-location aware placement optimizer
// offline: a JSON problem in (the same wire shape POST /v1/placements
// accepts), an optimized plan plus per-app predicted-degradation table
// out. The search is fully seeded — the same artefact, problem and
// -seed always print the same plan.
//
// Usage:
//
//	colotrain -machine 6core -savemodel model6.json
//	coloplan -model model6.json < problem.json
//	coloplan -model model6.json -input problem.json -seed 7 -json
//	coloplan -demo -apps cg,ep,mg,cg,ep,mg -count 3      # no artefact needed
//
// where problem.json looks like
//
//	{"machines": [{"count": 4}], "apps": ["cg", "ep", "mg", "cg"],
//	 "max_slowdown": 2.5, "beam": 12, "seed": 11}
//
// Flags -seed, -beam, -rounds, -objective and -qos override the
// corresponding fields of the input document when set, so a committed
// problem file can be re-planned under a different seed or objective
// without editing it.
//
// Exit status: 0 on success, 1 on usage or input errors, 2 when the
// best plan still violates the QoS bound (the plan is printed anyway —
// the violation is the finding).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/harness"
	"colocmodel/internal/placement"
	"colocmodel/internal/serve"
	"colocmodel/internal/simproc"
	"colocmodel/internal/workload"
)

func main() {
	var (
		modelPath = flag.String("model", "", "trained model artefact (see colotrain -savemodel)")
		demo      = flag.Bool("demo", false, "train a small in-process demo model instead of loading -model")
		input     = flag.String("input", "-", "problem JSON file (\"-\" = stdin; unused when -apps is set)")
		apps      = flag.String("apps", "", "comma-separated pending apps (bypasses -input)")
		count     = flag.Int("count", 2, "fleet size when -apps is used (default-machine fleet)")
		seed      = flag.Uint64("seed", 0, "local-search seed (overrides the input document)")
		beam      = flag.Int("beam", 0, "candidate moves sampled per round, 0 = greedy only (overrides input)")
		rounds    = flag.Int("rounds", 0, "local-search round cap (overrides input)")
		objective = flag.String("objective", "", "slowdown or energy (overrides input)")
		qos       = flag.Float64("qos", 0, "max per-app interference slowdown, 0 = unbounded (overrides input)")
		timeout   = flag.Duration("timeout", 30*time.Second, "search budget; on expiry the best plan so far is printed")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON instead of tables")
	)
	flag.Parse()
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	code, err := run(*modelPath, *demo, *input, *apps, *count, *seed, *beam, *rounds,
		*objective, *qos, *timeout, *jsonOut, set)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coloplan:", err)
	}
	os.Exit(code)
}

func run(modelPath string, demo bool, input, apps string, count int, seed uint64,
	beam, rounds int, objective string, qos float64, timeout time.Duration,
	jsonOut bool, set map[string]bool) (int, error) {

	m, err := loadModel(modelPath, demo)
	if err != nil {
		return 1, err
	}
	req, err := readProblem(input, apps, count)
	if err != nil {
		return 1, err
	}
	// Flag overrides, only when explicitly set on the command line.
	if set["seed"] {
		req.Seed = seed
	}
	if set["beam"] {
		req.Beam = beam
	}
	if set["rounds"] {
		req.MaxRounds = rounds
	}
	if set["objective"] {
		req.Objective = objective
	}
	if set["qos"] {
		req.MaxSlowdown = qos
	}
	prob, err := toProblem(req, m)
	if err != nil {
		return 1, err
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	res, err := placement.Optimize(ctx, prob, nil)
	if err != nil {
		return 1, err
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return 1, err
		}
	} else {
		printPlan(os.Stdout, prob, res)
	}
	if res.Plan.QoSViolations > 0 {
		return 2, fmt.Errorf("%d app(s) exceed the QoS bound %.2f", res.Plan.QoSViolations, prob.QoSBound)
	}
	return 0, nil
}

// loadModel reads the artefact, or trains the small demo model (the
// same sweep coloload -demo uses) when demo is set.
func loadModel(path string, demo bool) (*core.Model, error) {
	if demo {
		cg, _ := workload.ByName("cg")
		ep, _ := workload.ByName("ep")
		mg, _ := workload.ByName("mg")
		ds, err := harness.Collect(harness.Plan{
			Spec:       simproc.XeonE5649(),
			Targets:    []workload.App{cg, ep, mg},
			CoApps:     []workload.App{cg, ep},
			CoCounts:   []int{1, 2},
			PStates:    []int{0, 1},
			NoiseSigma: 0.01,
			Seed:       7,
		})
		if err != nil {
			return nil, fmt.Errorf("demo sweep: %w", err)
		}
		fs, err := features.SetByName("F")
		if err != nil {
			return nil, err
		}
		m, err := core.Train(core.Spec{Technique: core.Linear, FeatureSet: fs, Seed: 1}, ds, ds.Records)
		if err != nil {
			return nil, fmt.Errorf("demo training: %w", err)
		}
		return m, nil
	}
	if path == "" {
		return nil, fmt.Errorf("no model: pass -model <artefact> or -demo")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := core.LoadModel(f)
	if err != nil {
		return nil, fmt.Errorf("loading %s: %w", path, err)
	}
	return m, nil
}

// readProblem obtains the request document: synthesized from -apps, or
// decoded (strictly, like the server) from the input file or stdin.
func readProblem(input, apps string, count int) (serve.PlacementsRequest, error) {
	var req serve.PlacementsRequest
	if apps != "" {
		for _, a := range strings.Split(apps, ",") {
			if a = strings.TrimSpace(a); a != "" {
				req.Apps = append(req.Apps, a)
			}
		}
		req.Machines = []serve.PlacementMachineRequest{{Count: count}}
		req.MaxSlowdown = 2.5
		req.Beam = 12
		return req, nil
	}
	var raw []byte
	var err error
	if input == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(input)
	}
	if err != nil {
		return req, err
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("decoding problem: %w", err)
	}
	return req, nil
}

// specFor resolves a request machine name the same way the serve tier
// does, defaulting to the machine the model was trained on.
func specFor(name string, m *core.Model) (simproc.Spec, error) {
	if name == "" {
		name = m.Machine()
	}
	switch name {
	case "6core", "e5649", "E5649":
		return simproc.XeonE5649(), nil
	case "12core", "e5-2697v2", "E5-2697v2":
		return simproc.XeonE52697v2(), nil
	}
	for _, spec := range simproc.Machines() {
		if spec.Name == name {
			return spec, nil
		}
	}
	return simproc.Spec{}, fmt.Errorf("unknown machine %q (want 6core or 12core)", name)
}

// toProblem expands the wire request into an optimizer problem.
func toProblem(req serve.PlacementsRequest, m *core.Model) (placement.Problem, error) {
	prob := placement.Problem{
		Model:     m,
		Apps:      req.Apps,
		QoSBound:  req.MaxSlowdown,
		Seed:      req.Seed,
		Beam:      req.Beam,
		MaxRounds: req.MaxRounds,
	}
	obj, err := placement.ObjectiveByName(req.Objective)
	if err != nil {
		return prob, err
	}
	prob.Objective = obj
	if len(req.Machines) == 0 {
		req.Machines = []serve.PlacementMachineRequest{{Count: 2}}
	}
	for i, mr := range req.Machines {
		spec, err := specFor(mr.Machine, m)
		if err != nil {
			return prob, fmt.Errorf("machines[%d]: %w", i, err)
		}
		n := mr.Count
		if n <= 0 {
			n = 1
		}
		for k := 0; k < n; k++ {
			name := mr.Name
			if name != "" && n > 1 {
				name = fmt.Sprintf("%s-%d", name, k)
			}
			prob.Machines = append(prob.Machines, placement.Machine{
				Name: name, Spec: spec, Cores: mr.Cores,
				PStates: append([]int(nil), mr.PStates...),
			})
		}
	}
	return prob, nil
}

// printPlan renders the per-machine and per-app tables plus the search
// account.
func printPlan(w io.Writer, prob placement.Problem, res *placement.Result) {
	pl := res.Plan
	names := machineNames(prob)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "machine\tpstate\tapps")
	for i, as := range pl.Assignments {
		if len(as) == 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\tP%d\t%s\n", names[i], pl.PStates[i], strings.Join(as, " "))
	}
	tw.Flush()
	fmt.Fprintln(w)
	fmt.Fprintln(tw, "app\tmachine\tpstate\tbaseline_s\tpredicted_s\tslowdown\tdegradation")
	for _, ap := range pl.Apps {
		mark := ""
		if prob.QoSBound > 0 && ap.Slowdown > prob.QoSBound {
			mark = " !QoS"
		}
		fmt.Fprintf(tw, "%s\t%s\tP%d\t%.3f\t%.3f\t%.3f\t%.3f%s\n",
			ap.App, names[ap.Machine], ap.PState,
			ap.BaselineSeconds, ap.PredictedSeconds, ap.Slowdown, ap.Degradation, mark)
	}
	tw.Flush()
	fmt.Fprintln(w)
	fmt.Fprintf(w, "objective %s = %.4f  (degradation %.4f, slowdown %.4f, energy %.1f J)\n",
		prob.Objective, pl.Objective, pl.TotalDegradation, pl.TotalSlowdown, pl.TotalEnergyJ)
	fmt.Fprintf(w, "machines used %d/%d, qos violations %d\n",
		pl.MachinesUsed, len(prob.Machines), pl.QoSViolations)
	st := res.Stats
	state := "round-capped"
	switch {
	case st.TimedOut:
		state = "timed out"
	case st.Converged:
		state = "converged"
	}
	fmt.Fprintf(w, "search %s: %d rounds, %d improvements, %d scenarios predicted\n",
		state, st.Rounds, st.Improvements, st.Scenarios)
}

// machineNames applies the problem's naming default ("m%d") for the
// tables.
func machineNames(prob placement.Problem) []string {
	names := make([]string, len(prob.Machines))
	for i, mc := range prob.Machines {
		names[i] = mc.Name
		if names[i] == "" {
			names[i] = fmt.Sprintf("m%d", i)
		}
	}
	return names
}
