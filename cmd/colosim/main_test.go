package main

import "testing"

func TestSpecFor(t *testing.T) {
	for _, name := range []string{"6core", "e5649", "E5649"} {
		s, err := specFor(name)
		if err != nil || s.Cores != 6 {
			t.Fatalf("specFor(%q) = %+v, %v", name, s, err)
		}
	}
	for _, name := range []string{"12core", "e5-2697v2", "E5-2697v2"} {
		s, err := specFor(name)
		if err != nil || s.Cores != 12 {
			t.Fatalf("specFor(%q) = %+v, %v", name, s, err)
		}
	}
	if _, err := specFor("pentium"); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestRunTimeline(t *testing.T) {
	if err := run("6core", "canneal", "cg", 2, 0, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunBaselineAndColocation(t *testing.T) {
	if err := run("6core", "canneal", "cg", 0, 0, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run("6core", "canneal", "cg", 2, 1, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run("6core", "canneal", "cg", 0, 0, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("pentium", "canneal", "cg", 1, 0, false, false); err == nil {
		t.Fatal("bad machine accepted")
	}
	if err := run("6core", "ghost", "cg", 1, 0, false, false); err == nil {
		t.Fatal("bad target accepted")
	}
	if err := run("6core", "canneal", "ghost", 1, 0, false, false); err == nil {
		t.Fatal("bad co-app accepted")
	}
	if err := run("6core", "canneal", "cg", 9, 0, false, false); err == nil {
		t.Fatal("too many co-runners accepted")
	}
	if err := run("6core", "canneal", "cg", 1, 99, false, false); err == nil {
		t.Fatal("bad P-state accepted")
	}
}
