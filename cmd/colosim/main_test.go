package main

import (
	"encoding/json"
	"io"
	"os"
	"testing"
)

func TestSpecFor(t *testing.T) {
	for _, name := range []string{"6core", "e5649", "E5649"} {
		s, err := specFor(name)
		if err != nil || s.Cores != 6 {
			t.Fatalf("specFor(%q) = %+v, %v", name, s, err)
		}
	}
	for _, name := range []string{"12core", "e5-2697v2", "E5-2697v2"} {
		s, err := specFor(name)
		if err != nil || s.Cores != 12 {
			t.Fatalf("specFor(%q) = %+v, %v", name, s, err)
		}
	}
	if _, err := specFor("pentium"); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestRunTimeline(t *testing.T) {
	if err := run("6core", "canneal", "cg", 2, 0, false, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunBaselineAndColocation(t *testing.T) {
	if err := run("6core", "canneal", "cg", 0, 0, false, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run("6core", "canneal", "cg", 2, 1, false, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run("6core", "canneal", "cg", 0, 0, true, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("pentium", "canneal", "cg", 1, 0, false, false, false); err == nil {
		t.Fatal("bad machine accepted")
	}
	if err := run("6core", "ghost", "cg", 1, 0, false, false, false); err == nil {
		t.Fatal("bad target accepted")
	}
	if err := run("6core", "canneal", "ghost", 1, 0, false, false, false); err == nil {
		t.Fatal("bad co-app accepted")
	}
	if err := run("6core", "canneal", "cg", 9, 0, false, false, false); err == nil {
		t.Fatal("too many co-runners accepted")
	}
	if err := run("6core", "canneal", "cg", 1, 99, false, false, false); err == nil {
		t.Fatal("bad P-state accepted")
	}
}

// TestRunJSON verifies the -json report is valid, complete JSON that
// matches the simulated run (scripting parity with the HTTP API).
func TestRunJSON(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run("6core", "canneal", "cg", 2, 1, false, false, true)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, raw)
	}
	if rep.Machine != "Xeon E5649" || rep.Target != "canneal" || rep.CoApp != "cg" ||
		rep.NumCoLocated != 2 || rep.PState != 1 {
		t.Fatalf("report identity wrong: %+v", rep)
	}
	if rep.Slowdown <= 1 || rep.Seconds <= rep.BaselineSeconds || rep.Instructions == 0 {
		t.Fatalf("report values implausible: %+v", rep)
	}
	// Baseline run: no co_app key, slowdown 1.
	r2, w2, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w2
	runErr = run("6core", "canneal", "cg", 0, 0, false, false, true)
	w2.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	raw2, _ := io.ReadAll(r2)
	var rep2 report
	if err := json.Unmarshal(raw2, &rep2); err != nil {
		t.Fatal(err)
	}
	if rep2.CoApp != "" || rep2.Slowdown != 1 {
		t.Fatalf("baseline report wrong: %+v", rep2)
	}
}
