// Command colosim runs a single co-location scenario on a simulated
// multicore processor and reports the target's execution time, slowdown,
// and hardware counters.
//
// Usage:
//
//	colosim -machine 6core -target canneal -coapp cg -n 3 -pstate 0
//	colosim -machine 12core -target canneal -coapp cg -n 3 -json | jq .slowdown
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"colocmodel/internal/simproc"
	"colocmodel/internal/workload"
)

func main() {
	var (
		machine  = flag.String("machine", "6core", "machine: 6core (Xeon E5649) or 12core (Xeon E5-2697v2)")
		target   = flag.String("target", "canneal", "target application (Table III name)")
		coapp    = flag.String("coapp", "cg", "co-located application")
		n        = flag.Int("n", 1, "number of co-located copies (0 = baseline run)")
		pstate   = flag.Int("pstate", 0, "P-state index (0 = highest frequency)")
		list     = flag.Bool("list", false, "list applications and machines, then exit")
		timeline = flag.Bool("timeline", false, "print a per-epoch timeline of the run")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON (scripting parity with the coloserve HTTP API)")
	)
	flag.Parse()
	if err := run(*machine, *target, *coapp, *n, *pstate, *list, *timeline, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "colosim:", err)
		os.Exit(1)
	}
}

// report is the machine-readable form of one simulated run.
type report struct {
	Machine            string  `json:"machine"`
	PState             int     `json:"pstate"`
	FreqGHz            float64 `json:"freq_ghz"`
	Target             string  `json:"target"`
	Class              string  `json:"class"`
	CoApp              string  `json:"co_app,omitempty"`
	NumCoLocated       int     `json:"num_co_located"`
	BaselineSeconds    float64 `json:"baseline_seconds"`
	Seconds            float64 `json:"seconds"`
	Slowdown           float64 `json:"slowdown"`
	AvgMemLatencyNs    float64 `json:"avg_mem_latency_ns"`
	AvgDRAMUtilization float64 `json:"avg_dram_utilization"`
	AvgLLCShareBytes   float64 `json:"avg_llc_share_bytes"`
	Instructions       uint64  `json:"instructions"`
	LLCAccesses        uint64  `json:"llc_accesses"`
	LLCMisses          uint64  `json:"llc_misses"`
	CPI                float64 `json:"cpi"`
	MemoryIntensity    float64 `json:"memory_intensity"`
	CMPerCA            float64 `json:"cm_per_ca"`
	CAPerIns           float64 `json:"ca_per_ins"`
}

func run(machine, target, coapp string, n, pstate int, list, timeline, jsonOut bool) error {
	if list {
		fmt.Println("machines: 6core (Xeon E5649), 12core (Xeon E5-2697v2)")
		fmt.Println("applications:")
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		for _, a := range workload.All() {
			fmt.Fprintf(w, "  %s\t%s\t%s\n", a.Name, a.Suite, a.Class)
		}
		fmt.Fprintln(w, "microbenchmarks:")
		for _, a := range workload.Microbenchmarks() {
			fmt.Fprintf(w, "  %s\t(kernel)\t%s\n", a.Name, a.Class)
		}
		return w.Flush()
	}
	spec, err := specFor(machine)
	if err != nil {
		return err
	}
	proc, err := simproc.New(spec)
	if err != nil {
		return err
	}
	tgt, err := appByName(target)
	if err != nil {
		return err
	}
	var co []workload.App
	if n > 0 {
		app, err := appByName(coapp)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			co = append(co, app)
		}
	}
	base, err := proc.RunBaseline(tgt, pstate)
	if err != nil {
		return err
	}
	run, err := proc.RunColocation(tgt, co, pstate, simproc.Options{Timeline: timeline})
	if err != nil {
		return err
	}
	if jsonOut {
		c := run.Target.Counts
		rep := report{
			Machine:            spec.Name,
			PState:             pstate,
			FreqGHz:            run.FreqGHz,
			Target:             tgt.Name,
			Class:              tgt.Class.String(),
			NumCoLocated:       n,
			BaselineSeconds:    base.TargetSeconds,
			Seconds:            run.TargetSeconds,
			Slowdown:           run.TargetSeconds / base.TargetSeconds,
			AvgMemLatencyNs:    run.AvgMemLatencyNs,
			AvgDRAMUtilization: run.AvgDRAMUtilization,
			AvgLLCShareBytes:   run.TargetAvgOccupancyBytes,
			Instructions:       c.Instructions,
			LLCAccesses:        c.LLCAccesses,
			LLCMisses:          c.LLCMisses,
			CPI:                c.CPI(),
			MemoryIntensity:    c.MemoryIntensity(),
			CMPerCA:            c.CMPerCA(),
			CAPerIns:           c.CAPerIns(),
		}
		if n > 0 {
			rep.CoApp = coapp
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("machine:           %s (P%d, %.2f GHz)\n", spec.Name, pstate, run.FreqGHz)
	fmt.Printf("target:            %s (%s)\n", tgt.Name, tgt.Class)
	if n > 0 {
		fmt.Printf("co-located:        %d x %s\n", n, coapp)
	} else {
		fmt.Printf("co-located:        none (baseline)\n")
	}
	fmt.Printf("baseline time:     %.1f s\n", base.TargetSeconds)
	fmt.Printf("execution time:    %.1f s\n", run.TargetSeconds)
	fmt.Printf("normalized time:   %.3f\n", run.TargetSeconds/base.TargetSeconds)
	fmt.Printf("avg memory latency: %.0f ns (unloaded %.0f ns)\n", run.AvgMemLatencyNs, spec.Mem.BaseLatencyNs)
	fmt.Printf("avg DRAM load:     %.0f%% of sustained bandwidth\n", 100*run.AvgDRAMUtilization)
	fmt.Printf("avg LLC share:     %.1f MB of %.0f MB\n",
		run.TargetAvgOccupancyBytes/(1024*1024), spec.LLCBytes/(1024*1024))
	c := run.Target.Counts
	fmt.Printf("counters:          %d instructions, %d LLC accesses, %d LLC misses\n",
		c.Instructions, c.LLCAccesses, c.LLCMisses)
	fmt.Printf("derived:           CPI %.2f, memory intensity %.3e, CM/CA %.3f, CA/INS %.4f\n",
		c.CPI(), c.MemoryIntensity(), c.CMPerCA(), c.CAPerIns())
	if timeline {
		fmt.Println("\nper-epoch timeline:")
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "  t (s)\ttarget IPS\tmiss ratio\tLLC share (MB)\tmem latency\tDRAM load")
		step := len(run.Timeline) / 16
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(run.Timeline); i += step {
			s := run.Timeline[i]
			fmt.Fprintf(w, "  %.0f\t%.2e\t%.3f\t%.1f\t%.0f ns\t%.0f%%\n",
				s.ElapsedSeconds, s.TargetIPS, s.TargetMissRatio,
				s.TargetOccupancyBytes/(1024*1024), s.MemLatencyNs, 100*s.DRAMUtilization)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func specFor(name string) (simproc.Spec, error) {
	switch name {
	case "6core", "e5649", "E5649":
		return simproc.XeonE5649(), nil
	case "12core", "e5-2697v2", "E5-2697v2":
		return simproc.XeonE52697v2(), nil
	default:
		return simproc.Spec{}, fmt.Errorf("unknown machine %q (want 6core or 12core)", name)
	}
}

// appByName resolves Table III applications and microbenchmark kernels.
func appByName(name string) (workload.App, error) {
	if a, err := workload.ByName(name); err == nil {
		return a, nil
	}
	if a, ok := workload.MicrobenchmarkByName(name); ok {
		return a, nil
	}
	return workload.App{}, fmt.Errorf("unknown application %q (see -list)", name)
}
