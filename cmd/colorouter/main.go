// Command colorouter is the scale-out serving gateway: it spreads
// prediction traffic across a replicated coloserve fleet with
// consistent-hash scenario affinity (so each backend's prediction cache
// stays hot), health- and generation-aware backend selection, identical
// in-flight request coalescing, tail-latency hedging, and coordinated
// rolling model promotions.
//
// Usage:
//
//	coloserve -model model6.json -listen :8081 &
//	coloserve -model model6.json -listen :8082 &
//	coloserve -model model6.json -listen :8083 &
//	colorouter -backend a=http://localhost:8081 \
//	           -backend b=http://localhost:8082 \
//	           -backend c=http://localhost:8083 -listen :8080
//
// Endpoints:
//
//	POST /v1/predict          routed by scenario key, coalesced, hedged
//	POST /v1/predict/batch    scatter-gathered by scenario owner
//	POST /v1/observations     routed by scenario key (never hedged)
//	POST /v1/models/reload    rolling promotion across the fleet
//	GET  /v1/models           proxied from the most-promoted backend
//	GET  /v1/cluster          membership, health and generation state
//	GET  /v1/traces           stitched cross-process traces from the ring
//	GET  /v1/slo              SLO burn-rate verdict (ok | warn | page)
//	GET  /v1/fleet/metrics    merged fleet-wide Prometheus document
//	GET  /healthz             router liveness + fleet health summary
//	GET  /metrics             Prometheus text metrics (colorouter_ prefix)
//
// Clients that set X-Client-ID get per-client generation monotonicity
// across rolling promotions; anonymous clients share one floor. The
// router drains in-flight requests on SIGTERM/SIGINT before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"colocmodel/internal/cluster"
	"colocmodel/internal/obs"
)

func main() {
	var (
		listen   = flag.String("listen", ":8080", "address to serve on")
		replicas = flag.Int("replicas", 2, "replica-set size per scenario key")
		vnodes   = flag.Int("vnodes", 64, "virtual nodes per backend on the hash ring")
		probe    = flag.Duration("probe-interval", 2*time.Second, "health/generation probe interval")
		eject    = flag.Int("eject-after", 3, "consecutive probe failures before a backend is ejected")
		hedge    = flag.Duration("hedge-after", 0, "hedge delay for predict calls (0 = derive from observed p95, negative disables)")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		drain    = flag.Duration("drain", 15*time.Second, "shutdown drain budget for in-flight requests")

		logFormat = flag.String("log-format", "json", "structured request log format: json, text, or off")

		traceRing    = flag.Int("trace-ring", 256, "stitched traces retained for /v1/traces (negative disables tracing)")
		slowMS       = flag.Int("slow-ms", 100, "slow-request threshold in ms for trace retention and warn logs (0 retains everything)")
		sloObjective = flag.Float64("slo-objective", 0.999, "predict success-rate objective for burn-rate alerts (negative disables)")
		sloLatency   = flag.Duration("slo-latency", 250*time.Millisecond, "predict latency target counted against the SLO (0 = availability only)")
		fleetTimeout = flag.Duration("fleet-scrape-timeout", 2*time.Second, "per-backend timeout for /v1/fleet/metrics scrapes")

		backends backendArgs
	)
	flag.Var(&backends, "backend", "backend to join, as name=url or bare url (repeatable)")
	flag.Parse()
	cfg := cluster.Config{
		Replicas:           *replicas,
		VirtualNodes:       *vnodes,
		ProbeInterval:      *probe,
		EjectAfter:         *eject,
		HedgeAfter:         *hedge,
		RequestTimeout:     *timeout,
		TraceRing:          *traceRing,
		SlowThreshold:      slowFlag(*slowMS),
		SLOObjective:       *sloObjective,
		SLOLatencyTarget:   *sloLatency,
		FleetScrapeTimeout: *fleetTimeout,
	}
	if err := run(*listen, *drain, *logFormat, cfg, backends); err != nil {
		fmt.Fprintln(os.Stderr, "colorouter:", err)
		os.Exit(1)
	}
}

// slowFlag maps the -slow-ms convention (0 = everything is slow) onto
// the config convention (0 = default, negative = everything).
func slowFlag(ms int) time.Duration {
	if ms <= 0 {
		return -1
	}
	return time.Duration(ms) * time.Millisecond
}

// backendArgs collects repeated -backend flags.
type backendArgs []string

func (b *backendArgs) String() string { return strings.Join(*b, ",") }
func (b *backendArgs) Set(v string) error {
	*b = append(*b, v)
	return nil
}

// parseBackendArg splits a -backend value into a name and a base URL:
// "name=url" uses the explicit name, a bare URL names the backend after
// its host:port part.
func parseBackendArg(arg string) (name, base string, err error) {
	if i := strings.IndexByte(arg, '='); i >= 0 && !strings.HasPrefix(arg[i+1:], "//") {
		name, base = arg[:i], arg[i+1:]
		if name == "" || base == "" {
			return "", "", fmt.Errorf("bad -backend %q (want name=url)", arg)
		}
		return name, base, nil
	}
	name = strings.TrimPrefix(strings.TrimPrefix(arg, "http://"), "https://")
	name = strings.TrimRight(name, "/")
	if name == "" {
		return "", "", fmt.Errorf("bad -backend %q: cannot derive a backend name", arg)
	}
	return name, arg, nil
}

func run(listen string, drain time.Duration, logFormat string, cfg cluster.Config, backends backendArgs) error {
	if len(backends) == 0 {
		return fmt.Errorf("no backends: pass at least one -backend url")
	}
	logger, err := obs.NewLogger(os.Stderr, logFormat, 0)
	if err != nil {
		return err
	}
	cfg.Logger = logger
	rt := cluster.New(cfg)
	for _, arg := range backends {
		name, base, err := parseBackendArg(arg)
		if err != nil {
			return err
		}
		if err := rt.Pool().Add(name, base); err != nil {
			return err
		}
		fmt.Printf("backend %s: %s\n", name, base)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rt.Start(ctx)
	hedgeDesc := "p95-derived"
	if cfg.HedgeAfter > 0 {
		hedgeDesc = cfg.HedgeAfter.String()
	} else if cfg.HedgeAfter < 0 {
		hedgeDesc = "off"
	}
	fmt.Printf("routing on %s (replicas %d, vnodes %d, probe %s, hedge %s, timeout %s, drain %s)\n",
		listen, cfg.Replicas, cfg.VirtualNodes, cfg.ProbeInterval, hedgeDesc, cfg.RequestTimeout, drain)
	if err := rt.ListenAndServe(ctx, listen, drain); err != nil {
		return err
	}
	fmt.Println("drained, exiting")
	return nil
}
