// Command coloload is the load generator and soak harness for the
// serve tier. It drives a running coloserve instance (or, with -demo, a
// hermetic in-process server) with a Zipf-skewed scenario mix sampled
// from the served model's app/P-state space, reports latency quantiles,
// throughput and error rates, and gates the run against SLOs — the exit
// status is the verdict, so it slots directly into CI.
//
// Usage:
//
//	colotrain -machine 6core -savemodel model6.json
//	coloserve -model model6.json &
//	coloload -url http://localhost:8080 -mode closed -c 16 -duration 30s \
//	         -warmup 5s -max-p99 50ms -max-err-rate 0
//
//	coloload -mode open -rate 500 -duration 1m -url http://localhost:8080
//
//	coloload -demo -requests 5000 -json BENCH_soak.json   # no server needed
//
// The scenario space is discovered from GET /v1/models (the default
// model's apps and P-state count); -maxco bounds the co-runner
// multiplicity of generated scenarios. The op mix blends single
// predictions, batch predictions, observation ingests, model reloads
// and placement-optimizer searches via the -*-weight flags, or starts
// from a named -mix preset (predict, mixed, ingest) with explicit
// weight flags overriding the preset; observation and reload traffic
// requires a server running with -adapt and disk-backed models
// respectively. In demo mode -obs-disk backs the observation log with
// a real on-disk group-commit log (fsync per commit) instead of the
// memory store, so ingest soaks exercise the durable write path.
//
// With -json the full report is written as a benchmark artifact
// ({"bench", "pass", "violations", "report"}) for trend tracking.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"time"

	"colocmodel/internal/cluster"
	"colocmodel/internal/core"
	"colocmodel/internal/drift"
	"colocmodel/internal/features"
	"colocmodel/internal/feedback"
	"colocmodel/internal/fleetobs"
	"colocmodel/internal/harness"
	"colocmodel/internal/loadgen"
	"colocmodel/internal/obs"
	"colocmodel/internal/serve"
	"colocmodel/internal/simproc"
	"colocmodel/internal/workload"
)

// options carries every flag so tests can drive run() directly.
type options struct {
	url      string
	demo     bool
	mode     string
	rate     float64
	conc     int
	duration time.Duration
	warmup   time.Duration
	requests int
	seed     uint64
	checkGen bool

	zipf            float64
	maxCo           int
	predictWeight   float64
	batchWeight     float64
	observeWeight   float64
	reloadWeight    float64
	placementWeight float64
	batchSize       int
	obsDisk         bool

	clusterN int
	replicas int

	slo       loadgen.SLO
	jsonPath  string
	jsonMerge bool
	name      string
}

func main() {
	var o options
	flag.StringVar(&o.url, "url", "http://localhost:8080", "base URL of the coloserve instance under test")
	flag.BoolVar(&o.demo, "demo", false, "hermetic mode: train a small model and soak an in-process server (ignores -url)")
	flag.StringVar(&o.mode, "mode", "closed", "driving mode: closed (fixed concurrency) or open (fixed arrival rate)")
	flag.Float64Var(&o.rate, "rate", 0, "open-loop arrival rate in requests/second")
	flag.IntVar(&o.conc, "c", 8, "worker concurrency")
	flag.DurationVar(&o.duration, "duration", 10*time.Second, "run length")
	flag.DurationVar(&o.warmup, "warmup", 0, "initial stretch excluded from the report")
	flag.IntVar(&o.requests, "requests", 0, "stop after this many requests (0 = duration-bound)")
	flag.Uint64Var(&o.seed, "seed", 1, "seed for scenario sampling and the op mix")
	flag.BoolVar(&o.checkGen, "check-generations", true, "verify the serving generation never moves backwards per worker")

	flag.Float64Var(&o.zipf, "zipf", 1.1, "Zipf skew of the scenario popularity (0 = uniform)")
	flag.IntVar(&o.maxCo, "maxco", 3, "largest co-runner multiplicity in generated scenarios")
	flag.Float64Var(&o.predictWeight, "predict-weight", 1, "relative frequency of POST /v1/predict")
	flag.Float64Var(&o.batchWeight, "batch-weight", 0, "relative frequency of POST /v1/predict/batch")
	flag.Float64Var(&o.observeWeight, "observe-weight", 0, "relative frequency of POST /v1/observations (needs -adapt on the server)")
	flag.Float64Var(&o.reloadWeight, "reload-weight", 0, "relative frequency of POST /v1/models/reload (needs disk-backed models)")
	flag.Float64Var(&o.placementWeight, "placement-weight", 0, "relative frequency of POST /v1/placements (seeded optimizer searches)")
	flag.IntVar(&o.batchSize, "batch-size", 16, "scenarios per batch request")
	mixPreset := flag.String("mix", "", "traffic preset: predict, mixed, or ingest (~80% observations); explicit weight flags override")
	flag.BoolVar(&o.obsDisk, "obs-disk", false, "demo/cluster mode: back the observation log with an on-disk group-commit log (fsync per commit)")

	flag.IntVar(&o.clusterN, "cluster", 0, "hermetic cluster mode: soak this many in-process replicas behind a colorouter gateway (ignores -url)")
	flag.IntVar(&o.replicas, "replicas", 2, "cluster mode: replica-set size per scenario key")

	flag.DurationVar(&o.slo.MaxP50, "max-p50", 0, "SLO: p50 latency bound (0 = unchecked)")
	flag.DurationVar(&o.slo.MaxP95, "max-p95", 0, "SLO: p95 latency bound (0 = unchecked)")
	flag.DurationVar(&o.slo.MaxP99, "max-p99", 0, "SLO: p99 latency bound (0 = unchecked)")
	flag.DurationVar(&o.slo.MaxP999, "max-p999", 0, "SLO: p99.9 latency bound (0 = unchecked)")
	flag.Float64Var(&o.slo.MaxErrorRate, "max-err-rate", -1, "SLO: error-rate bound in [0,1] (negative = unchecked, 0 = no errors allowed)")
	flag.Float64Var(&o.slo.MinThroughput, "min-throughput", 0, "SLO: measured req/s floor (0 = unchecked)")
	flag.StringVar(&o.jsonPath, "json", "", "write the report as a benchmark artifact to this path")
	flag.BoolVar(&o.jsonMerge, "json-merge", false, "merge the artifact into -json as a trajectory array (replace same-name entry, keep others)")
	flag.StringVar(&o.name, "name", "coloload", "benchmark name recorded in the artifact")
	flag.Parse()

	if *mixPreset != "" {
		preset, err := loadgen.MixPreset(*mixPreset)
		if err != nil {
			fmt.Fprintln(os.Stderr, "coloload:", err)
			os.Exit(1)
		}
		// The preset seeds the weights; any weight flag the user set
		// explicitly wins over it.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["predict-weight"] {
			o.predictWeight = preset.PredictWeight
		}
		if !set["batch-weight"] {
			o.batchWeight = preset.BatchWeight
		}
		if !set["observe-weight"] {
			o.observeWeight = preset.ObserveWeight
		}
		if !set["reload-weight"] {
			o.reloadWeight = preset.ReloadWeight
		}
		if !set["placement-weight"] {
			o.placementWeight = preset.PlacementWeight
		}
		if !set["batch-size"] && preset.BatchSize > 0 {
			o.batchSize = preset.BatchSize
		}
	}

	pass, err := run(os.Stdout, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coloload:", err)
		os.Exit(1)
	}
	if !pass {
		os.Exit(1)
	}
}

// run executes one load run and returns the gate verdict.
func run(w io.Writer, o options) (bool, error) {
	cfg := loadgen.Config{
		Concurrency: o.conc,
		Duration:    o.duration,
		Requests:    o.requests,
		Warmup:      o.warmup,
		Seed:        o.seed,
		Mix: loadgen.Mix{
			ZipfSkew:        o.zipf,
			PredictWeight:   o.predictWeight,
			BatchWeight:     o.batchWeight,
			ObserveWeight:   o.observeWeight,
			ReloadWeight:    o.reloadWeight,
			PlacementWeight: o.placementWeight,
			BatchSize:       o.batchSize,
		},
		CheckGenerations: o.checkGen,
	}
	switch o.mode {
	case "closed":
		cfg.Mode = loadgen.ClosedLoop
	case "open":
		cfg.Mode = loadgen.OpenLoop
		cfg.Rate = o.rate
	default:
		return false, fmt.Errorf("unknown -mode %q (want closed or open)", o.mode)
	}

	var (
		doer  loadgen.Doer
		space *loadgen.Space
		ct    *loadgen.ClusterTarget
		err   error
	)
	obsDir := ""
	if o.obsDisk {
		if obsDir, err = os.MkdirTemp("", "coloload-obslog-"); err != nil {
			return false, err
		}
		defer os.RemoveAll(obsDir)
		fmt.Fprintf(w, "obslog: disk-backed group-commit log in %s (fsync per commit)\n", obsDir)
	}
	switch {
	case o.clusterN > 0:
		ct, space, err = clusterTarget(o.clusterN, o.replicas, o.maxCo, obsDir)
		if err != nil {
			return false, err
		}
		defer ct.Close()
		doer = ct.Doer()
		fmt.Fprintf(w, "cluster: %d replicas behind colorouter (replica sets of %d)\n", o.clusterN, o.replicas)
	case o.demo:
		doer, space, err = demoTarget(o.maxCo, obsDir)
	default:
		doer = loadgen.NewHTTPDoer(o.url)
		space, err = discoverSpace(o.url, o.maxCo)
	}
	if err != nil {
		return false, err
	}

	fmt.Fprintf(w, "coloload: %s, %d workers, %v (%d scenarios, zipf %.2f, seed %d)\n",
		cfg.Mode, cfg.Concurrency, o.duration, space.Size(), o.zipf, o.seed)
	rep, err := loadgen.Run(cfg, doer, space)
	if err != nil {
		return false, err
	}
	violations := rep.Gate(o.slo)
	if ct != nil {
		// Post-soak fleet health: the router's own burn-rate verdict and
		// merged telemetry gate the run alongside the measured SLOs — a
		// "page" state means the fleet itself judged the soak unhealthy.
		fv, err := fleetHealth(w, ct)
		if err != nil {
			return false, err
		}
		violations = append(violations, fv...)
	}
	printReport(w, rep, violations)

	if o.jsonPath != "" {
		art := loadgen.BenchArtifact{
			Bench:      o.name,
			Pass:       len(violations) == 0,
			Violations: violations,
			Report:     rep,
		}
		if o.jsonMerge {
			if _, err := loadgen.MergeArtifact(o.jsonPath, art); err != nil {
				return false, err
			}
		} else {
			raw, err := json.MarshalIndent(art, "", "  ")
			if err != nil {
				return false, err
			}
			if err := os.WriteFile(o.jsonPath, append(raw, '\n'), 0o644); err != nil {
				return false, err
			}
		}
		fmt.Fprintf(w, "wrote %s\n", o.jsonPath)
	}
	return len(violations) == 0, nil
}

// printReport renders the human-readable summary.
func printReport(w io.Writer, r *loadgen.Report, violations []string) {
	ms := func(s float64) string { return fmt.Sprintf("%.3fms", s*1e3) }
	fmt.Fprintf(w, "requests  %d measured (%d warmup) in %.2fs\n",
		r.Requests, r.WarmupRequests, r.DurationSeconds)
	fmt.Fprintf(w, "throughput  %.1f req/s\n", r.ThroughputPerSec)
	fmt.Fprintf(w, "latency  p50 %s  p95 %s  p99 %s  p999 %s  mean %s  max %s\n",
		ms(r.Latency.P50), ms(r.Latency.P95), ms(r.Latency.P99),
		ms(r.Latency.P999), ms(r.Latency.Mean), ms(r.Latency.Max))
	fmt.Fprintf(w, "errors  %d (rate %.4f%%): 2xx=%d 4xx=%d 5xx=%d transport=%d\n",
		r.Errors, r.ErrorRate*100, r.Status2xx, r.Status4xx, r.Status5xx, r.TransportErrors)
	if r.GenerationRegressions > 0 {
		fmt.Fprintf(w, "generation regressions  %d (STALE MODELS SERVED)\n", r.GenerationRegressions)
	}
	ops := make([]string, 0, len(r.PerOp))
	for k := range r.PerOp {
		ops = append(ops, k)
	}
	sort.Strings(ops)
	fmt.Fprintf(w, "ops ")
	for _, k := range ops {
		fmt.Fprintf(w, " %s=%d", k, r.PerOp[k])
	}
	fmt.Fprintln(w)
	if len(r.ServerStages) > 0 {
		stages := make([]string, 0, len(r.ServerStages))
		for k := range r.ServerStages {
			stages = append(stages, k)
		}
		sort.Strings(stages)
		fmt.Fprintf(w, "server stages ")
		for _, k := range stages {
			ss := r.ServerStages[k]
			fmt.Fprintf(w, " %s=%s(n=%d)", k, ms(ss.MeanSeconds), ss.Count)
		}
		fmt.Fprintln(w)
	}
	if len(violations) == 0 {
		fmt.Fprintln(w, "SLO: PASS")
		return
	}
	fmt.Fprintln(w, "SLO: FAIL")
	for _, v := range violations {
		fmt.Fprintln(w, "  -", v)
	}
}

// discoverSpace reads GET /v1/models and builds the scenario space of
// the default model.
func discoverSpace(base string, maxCo int) (*loadgen.Space, error) {
	resp, err := http.Get(base + "/v1/models")
	if err != nil {
		return nil, fmt.Errorf("discovering models at %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/models returned %s", resp.Status)
	}
	var mr serve.ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return nil, fmt.Errorf("decoding /v1/models: %w", err)
	}
	if len(mr.Models) == 0 {
		return nil, fmt.Errorf("server registry is empty")
	}
	info := mr.Models[0]
	for _, m := range mr.Models {
		if m.Default {
			info = m
			break
		}
	}
	return loadgen.SpaceFromModel(info, maxCo)
}

// demoModel trains the small demo model on a simulated sweep and saves
// it to a temp artefact (so reload ops can re-read it from disk).
func demoModel() (string, *core.Model, error) {
	cg, _ := workload.ByName("cg")
	ep, _ := workload.ByName("ep")
	mg, _ := workload.ByName("mg")
	ds, err := harness.Collect(harness.Plan{
		Spec:       simproc.XeonE5649(),
		Targets:    []workload.App{cg, ep, mg},
		CoApps:     []workload.App{cg, ep},
		CoCounts:   []int{1, 2},
		PStates:    []int{0, 1},
		NoiseSigma: 0.01,
		Seed:       7,
	})
	if err != nil {
		return "", nil, fmt.Errorf("demo sweep: %w", err)
	}
	set, err := features.SetByName("F")
	if err != nil {
		return "", nil, err
	}
	m, err := core.Train(core.Spec{Technique: core.Linear, FeatureSet: set, Seed: 1}, ds, ds.Records)
	if err != nil {
		return "", nil, fmt.Errorf("demo training: %w", err)
	}
	dir, err := os.MkdirTemp("", "coloload-demo-")
	if err != nil {
		return "", nil, err
	}
	path := filepath.Join(dir, "demo.json")
	f, err := os.Create(path)
	if err != nil {
		return "", nil, err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return "", nil, err
	}
	if err := f.Close(); err != nil {
		return "", nil, err
	}
	return path, m, nil
}

// demoServer builds one in-process server over the demo artefact, with
// the adaptation loop attached (untrippable drift threshold) so
// observation ops work. A non-empty obsDir backs the observation log
// with the on-disk group-commit log, fsyncing every commit.
func demoServer(path string, m *core.Model, obsDir string) (*serve.Server, error) {
	reg := serve.NewRegistry()
	if err := reg.Add("demo", path, m); err != nil {
		return nil, err
	}
	srv := serve.New(reg, serve.Config{CacheSize: 1 << 12})
	log, err := feedback.Open(feedback.Config{Dir: obsDir, Sync: obsDir != ""})
	if err != nil {
		return nil, err
	}
	mon := drift.NewMonitor(drift.Config{Lambda: 1e18, MinSamples: 1 << 30})
	if err := srv.EnableAdaptation(serve.Adaptation{Log: log, Monitor: mon}); err != nil {
		return nil, err
	}
	return srv, nil
}

// demoTarget builds the hermetic single-node target: a small linear
// model trained on a simulated sweep, saved to a temp artefact so
// reload ops work, served with the adaptation loop attached (with an
// untrippable drift threshold) so observation ops work too.
func demoTarget(maxCo int, obsDir string) (loadgen.Doer, *loadgen.Space, error) {
	path, m, err := demoModel()
	if err != nil {
		return nil, nil, err
	}
	srv, err := demoServer(path, m, obsDir)
	if err != nil {
		return nil, nil, err
	}
	space, err := loadgen.SpaceFromModel(srv.Registry().List()[0], maxCo)
	if err != nil {
		return nil, nil, err
	}
	return &loadgen.HandlerDoer{Handler: srv.Handler()}, space, nil
}

// clusterTarget builds the hermetic cluster target: n in-process
// replicas of the demo server (each with its own registry, so rolling
// promotions bump generations independently) behind a colorouter
// gateway probing every 250ms.
func clusterTarget(n, replicas, maxCo int, obsDir string) (*loadgen.ClusterTarget, *loadgen.Space, error) {
	path, m, err := demoModel()
	if err != nil {
		return nil, nil, err
	}
	ct, err := loadgen.NewClusterTarget(context.Background(), cluster.Config{
		Replicas:      replicas,
		ProbeInterval: 250 * time.Millisecond,
	}, n, func(i int) (*serve.Server, error) {
		dir := obsDir
		if dir != "" {
			dir = filepath.Join(obsDir, fmt.Sprintf("replica-%d", i))
		}
		return demoServer(path, m, dir)
	})
	if err != nil {
		return nil, nil, err
	}
	space, err := loadgen.SpaceFromModel(ct.Servers[0].Registry().List()[0], maxCo)
	if err != nil {
		ct.Close()
		return nil, nil, err
	}
	return ct, space, nil
}

// fleetHealth scrapes the router's fleet-wide telemetry after a cluster
// soak: /v1/fleet/metrics must merge into a parseable Prometheus
// document, and a /v1/slo burn-rate state of "page" is a gate
// violation ("warn" is reported but passes — short soaks burn budget
// quickly by construction).
func fleetHealth(w io.Writer, ct *loadgen.ClusterTarget) ([]string, error) {
	h := ct.Router.Handler()
	get := func(path string) (*httptest.ResponseRecorder, error) {
		rec := httptest.NewRecorder()
		req, err := http.NewRequest(http.MethodGet, path, nil)
		if err != nil {
			return nil, err
		}
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return nil, fmt.Errorf("GET %s: status %d: %s", path, rec.Code, rec.Body.String())
		}
		return rec, nil
	}

	rec, err := get("/v1/fleet/metrics")
	if err != nil {
		return nil, err
	}
	doc, err := fleetobs.Parse(rec.Body)
	if err != nil {
		return nil, fmt.Errorf("fleet metrics document does not parse: %w", err)
	}
	req, _ := doc.SumSamples("coloserve_requests_total", "coloserve_requests_total")
	errs, _ := doc.SumSamples("coloserve_request_errors_total", "coloserve_request_errors_total")
	fmt.Fprintf(w, "fleet  %.0f backend requests merged, %.0f errors\n", req, errs)

	rec, err = get("/v1/slo")
	if err != nil {
		return nil, err
	}
	var st obs.SLOStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		return nil, fmt.Errorf("decoding /v1/slo: %w", err)
	}
	fmt.Fprintf(w, "fleet SLO  state %s (objective %g, short burn %.2f, long burn %.2f)\n",
		st.State, st.Objective, st.Short.BurnRate, st.Long.BurnRate)
	if st.State == "page" {
		return []string{fmt.Sprintf("fleet SLO state page (short burn %.2f, long burn %.2f)", st.Short.BurnRate, st.Long.BurnRate)}, nil
	}
	return nil, nil
}
