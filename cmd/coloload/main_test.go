package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"colocmodel/internal/loadgen"
)

// demoOptions is a short hermetic run exercising all four op kinds.
func demoOptions(t *testing.T) options {
	t.Helper()
	return options{
		demo:          true,
		mode:          "closed",
		conc:          4,
		duration:      time.Minute,
		requests:      600,
		seed:          11,
		checkGen:      true,
		zipf:          1.1,
		maxCo:         2,
		predictWeight: 8,
		batchWeight:   1,
		observeWeight: 1,
		reloadWeight:  0.25,
		batchSize:     4,
		slo:           loadgen.SLO{MaxErrorRate: 0, MinThroughput: 1},
		jsonPath:      filepath.Join(t.TempDir(), "BENCH_demo.json"),
		name:          "demo-soak",
	}
}

func TestDemoRunPassesGate(t *testing.T) {
	o := demoOptions(t)
	var out bytes.Buffer
	pass, err := run(&out, o)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !pass {
		t.Fatalf("demo run failed its gate:\n%s", out.String())
	}
	text := out.String()
	for _, want := range []string{"p50", "p95", "p99", "p999", "throughput", "SLO: PASS"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}

	raw, err := os.ReadFile(o.jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var art loadgen.BenchArtifact
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if art.Bench != "demo-soak" || !art.Pass || art.Report == nil {
		t.Fatalf("artifact malformed: %+v", art)
	}
	if art.Report.Requests != 600 {
		t.Fatalf("artifact reports %d requests, want 600", art.Report.Requests)
	}
	if art.Report.Errors != 0 || art.Report.GenerationRegressions != 0 {
		t.Fatalf("demo soak saw errors=%d regressions=%d", art.Report.Errors, art.Report.GenerationRegressions)
	}
	for _, kind := range []string{loadgen.OpPredict, loadgen.OpBatch, loadgen.OpObserve, loadgen.OpReload} {
		if art.Report.PerOp[kind] == 0 {
			t.Errorf("demo soak never issued %q ops: %v", kind, art.Report.PerOp)
		}
	}
}

func TestDemoRunFailsImpossibleGate(t *testing.T) {
	o := demoOptions(t)
	o.jsonPath = ""
	o.slo.MinThroughput = 1e12 // no machine clears this
	var out bytes.Buffer
	pass, err := run(&out, o)
	if err != nil {
		t.Fatal(err)
	}
	if pass {
		t.Fatal("impossible throughput SLO passed")
	}
	if !strings.Contains(out.String(), "SLO: FAIL") {
		t.Fatalf("output missing failure verdict:\n%s", out.String())
	}
}

func TestRunRejectsUnknownMode(t *testing.T) {
	o := demoOptions(t)
	o.mode = "bogus"
	if _, err := run(&bytes.Buffer{}, o); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
