package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"colocmodel/internal/linalg"
	"colocmodel/internal/mlp"
	"colocmodel/internal/xrand"
)

// benchTrainSizes are the small/medium/large synthetic batch sizes,
// matching BenchmarkTrainSCGBatched in internal/mlp so the committed
// artifact and the go-test benchmarks describe the same problem.
var benchTrainSizes = []int{64, 512, 4096}

// trainBenchReport is the schema of BENCH_train.json.
type trainBenchReport struct {
	Benchmark  string           `json:"benchmark"`
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Features   int              `json:"features"`
	Hidden     []int            `json:"hidden"`
	MaxIter    int              `json:"max_iter"`
	Baseline   string           `json:"baseline"`
	Cases      []trainBenchCase `json:"cases"`
}

// trainBenchCase is one measured configuration.
type trainBenchCase struct {
	Name        string  `json:"name"`
	Rows        int     `json:"rows"`
	Workers     int     `json:"workers"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MsPerTrain  float64 `json:"ms_per_train"`
}

// benchDataset builds the same synthetic training problem the mlp
// benchmarks use: standard-normal features and labels, seeded by the
// row count so every run measures an identical workload.
func benchDataset(rows, cols int) (*linalg.Matrix, []float64) {
	src := xrand.New(uint64(rows))
	x := linalg.NewMatrix(rows, cols)
	for i := range x.Data {
		x.Data[i] = src.Normal(0, 1)
	}
	y := make([]float64, rows)
	for i := range y {
		y[i] = src.Normal(0, 1)
	}
	return x, y
}

// runBenchTrain measures the batched SCG trainer at small/medium/large
// batch sizes (plus a row-chunked parallel case at the largest) and
// writes the results to path as JSON. The pre-rewrite per-sample
// trainer survives only as a test reference, so its timings come from
// the benchmark named in the report's baseline field rather than here.
func runBenchTrain(path string) error {
	const (
		features = 8
		maxIter  = 20
	)
	hidden := []int{20}
	rep := trainBenchReport{
		Benchmark:  "train-scg-batched",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Features:   features,
		Hidden:     hidden,
		MaxIter:    maxIter,
		Baseline:   "go test ./internal/mlp -bench TrainSCGScalarRef (pre-rewrite per-sample trainer)",
	}

	measure := func(name string, rows, workers int) trainBenchCase {
		x, y := benchDataset(rows, features)
		ws := mlp.NewWorkspace()
		cfg := mlp.SCGConfig{MaxIter: maxIter, GradTol: 1e-300, Workers: workers}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n, err := mlp.New(mlp.Config{Inputs: features, Hidden: hidden, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := mlp.TrainSCGWS(n, x, y, cfg, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
		return trainBenchCase{
			Name:        name,
			Rows:        rows,
			Workers:     workers,
			Iterations:  res.N,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			MsPerTrain:  float64(res.NsPerOp()) / 1e6,
		}
	}

	for _, rows := range benchTrainSizes {
		c := measure(fmt.Sprintf("batched/rows%d", rows), rows, 0)
		rep.Cases = append(rep.Cases, c)
		fmt.Printf("%-20s %8.2f ms/train  %6d allocs/op\n", c.Name, c.MsPerTrain, c.AllocsPerOp)
	}
	if procs := runtime.GOMAXPROCS(0); procs > 1 {
		rows := benchTrainSizes[len(benchTrainSizes)-1]
		c := measure(fmt.Sprintf("parallel%d/rows%d", procs, rows), rows, procs)
		rep.Cases = append(rep.Cases, c)
		fmt.Printf("%-20s %8.2f ms/train  %6d allocs/op\n", c.Name, c.MsPerTrain, c.AllocsPerOp)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("training benchmark written to %s\n", path)
	return nil
}
