package main

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/harness"
	"colocmodel/internal/linalg"
	"colocmodel/internal/loadgen"
	"colocmodel/internal/mlp"
	"colocmodel/internal/simproc"
	"colocmodel/internal/xrand"
)

// benchTrainSizes are the small/medium/large synthetic batch sizes,
// matching BenchmarkTrainSCGBatched in internal/mlp so the committed
// artifact and the go-test benchmarks describe the same problem.
var benchTrainSizes = []int{64, 512, 4096}

// trainBenchReport is the training entry of the BENCH_train.json
// trajectory (one JSON array, entries keyed by bench name).
type trainBenchReport struct {
	Bench      string           `json:"bench"`
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Features   int              `json:"features"`
	Hidden     []int            `json:"hidden"`
	MaxIter    int              `json:"max_iter"`
	Baseline   string           `json:"baseline"`
	Cases      []trainBenchCase `json:"cases"`
}

// trainBenchCase is one measured configuration.
type trainBenchCase struct {
	Name        string  `json:"name"`
	Rows        int     `json:"rows"`
	Workers     int     `json:"workers"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MsPerTrain  float64 `json:"ms_per_train"`
}

// benchDataset builds the same synthetic training problem the mlp
// benchmarks use: standard-normal features and labels, seeded by the
// row count so every run measures an identical workload.
func benchDataset(rows, cols int) (*linalg.Matrix, []float64) {
	src := xrand.New(uint64(rows))
	x := linalg.NewMatrix(rows, cols)
	for i := range x.Data {
		x.Data[i] = src.Normal(0, 1)
	}
	y := make([]float64, rows)
	for i := range y {
		y[i] = src.Normal(0, 1)
	}
	return x, y
}

// runBenchTrain measures the batched SCG trainer at small/medium/large
// batch sizes (plus a row-chunked parallel case at the largest) and
// writes the results to path as JSON. The pre-rewrite per-sample
// trainer survives only as a test reference, so its timings come from
// the benchmark named in the report's baseline field rather than here.
func runBenchTrain(path string) error {
	const (
		features = 8
		maxIter  = 20
	)
	hidden := []int{20}
	rep := trainBenchReport{
		Bench:      "train-scg-batched",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Features:   features,
		Hidden:     hidden,
		MaxIter:    maxIter,
		Baseline:   "go test ./internal/mlp -bench TrainSCGScalarRef (pre-rewrite per-sample trainer)",
	}

	measure := func(name string, rows, workers int) trainBenchCase {
		x, y := benchDataset(rows, features)
		ws := mlp.NewWorkspace()
		cfg := mlp.SCGConfig{MaxIter: maxIter, GradTol: 1e-300, Workers: workers}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n, err := mlp.New(mlp.Config{Inputs: features, Hidden: hidden, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := mlp.TrainSCGWS(n, x, y, cfg, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
		return trainBenchCase{
			Name:        name,
			Rows:        rows,
			Workers:     workers,
			Iterations:  res.N,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			MsPerTrain:  float64(res.NsPerOp()) / 1e6,
		}
	}

	for _, rows := range benchTrainSizes {
		c := measure(fmt.Sprintf("batched/rows%d", rows), rows, 0)
		rep.Cases = append(rep.Cases, c)
		fmt.Printf("%-20s %8.2f ms/train  %6d allocs/op\n", c.Name, c.MsPerTrain, c.AllocsPerOp)
	}
	if procs := runtime.GOMAXPROCS(0); procs > 1 {
		rows := benchTrainSizes[len(benchTrainSizes)-1]
		c := measure(fmt.Sprintf("parallel%d/rows%d", procs, rows), rows, procs)
		rep.Cases = append(rep.Cases, c)
		fmt.Printf("%-20s %8.2f ms/train  %6d allocs/op\n", c.Name, c.MsPerTrain, c.AllocsPerOp)
	}

	if err := mergeBenchEntry(path, rep); err != nil {
		return err
	}
	fmt.Printf("training benchmark merged into %s\n", path)
	return nil
}

// mergeBenchEntry folds one report into the trajectory file, replacing
// any previous run of the same benchmark and preserving the others.
func mergeBenchEntry(path string, rep any) error {
	raw, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	_, err = loadgen.MergeRawArtifact(path, raw)
	return err
}

// predictBenchReport is the inference-path entry of BENCH_train.json.
type predictBenchReport struct {
	Bench         string             `json:"bench"`
	GoVersion     string             `json:"go_version"`
	GOMAXPROCS    int                `json:"gomaxprocs"`
	Model         string             `json:"model"`
	Machine       string             `json:"machine"`
	ScalarSpeedup float64            `json:"scalar_speedup"`
	Cases         []predictBenchCase `json:"cases"`
}

// predictBenchCase is one measured predict configuration. Batch is 1
// for the scalar cases.
type predictBenchCase struct {
	Name        string `json:"name"`
	Batch       int    `json:"batch"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// benchPredictScenarios draws a deterministic scenario pool over the
// model's applications and P-states, mirroring the pool the
// BenchmarkPredictPath go-test benchmark uses.
func benchPredictScenarios(m *core.Model, n int) []features.Scenario {
	src := xrand.New(7)
	apps := m.Apps()
	out := make([]features.Scenario, n)
	for i := range out {
		co := make([]string, src.Intn(6))
		for j := range co {
			co[j] = apps[src.Intn(len(apps))]
		}
		out[i] = features.Scenario{
			Target: apps[src.Intn(len(apps))],
			CoApps: co,
			PState: src.Intn(m.PStates()),
		}
	}
	return out
}

// runBenchPredict trains neural-net-F on the default 6-core collection
// plan and measures the inference fast path against the interpreted
// reference: warm compiled scalar, the pooled Model.Predict dispatch,
// batches at the loadgen sizes, and parallel dispatch. Results merge
// into the same trajectory file as the training benchmark.
func runBenchPredict(path string) error {
	spec := simproc.XeonE5649()
	plan := harness.DefaultPlan(spec, 42)
	fmt.Printf("collecting %d co-location runs on %s for the predict benchmark...\n", plan.RunCount(), spec.Name)
	ds, err := harness.Collect(plan)
	if err != nil {
		return err
	}
	setF, err := features.SetByName("F")
	if err != nil {
		return err
	}
	m, err := core.Train(core.Spec{Technique: core.NeuralNet, FeatureSet: setF, Seed: 42}, ds, ds.Records)
	if err != nil {
		return err
	}
	c, err := m.Compile()
	if err != nil {
		return fmt.Errorf("model did not compile: %w", err)
	}
	pool := benchPredictScenarios(m, 4096)
	sc := pool[0]
	if _, err := c.Predict(sc); err != nil { // warm the replica before timing
		return err
	}

	rep := predictBenchReport{
		Bench:      "predict-path",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Model:      m.Spec.String(),
		Machine:    ds.Machine,
	}
	measure := func(name string, batch int, fn func(b *testing.B)) predictBenchCase {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		pc := predictBenchCase{
			Name:        name,
			Batch:       batch,
			Iterations:  res.N,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		rep.Cases = append(rep.Cases, pc)
		fmt.Printf("%-24s %10d ns/op  %6d allocs/op\n", name, pc.NsPerOp, pc.AllocsPerOp)
		return pc
	}

	interp := measure("scalar/interpreted", 1, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.PredictInterpreted(sc); err != nil {
				b.Fatal(err)
			}
		}
	})
	warm := measure("scalar/compiled-warm", 1, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Predict(sc); err != nil {
				b.Fatal(err)
			}
		}
	})
	measure("scalar/dispatch", 1, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.Predict(sc); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range benchTrainSizes {
		scs := pool[:n]
		measure(fmt.Sprintf("batch%d/interpreted", n), n, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.PredictScenariosInterpreted(scs); err != nil {
					b.Fatal(err)
				}
			}
		})
		out := make([]float64, n)
		measure(fmt.Sprintf("batch%d/compiled", n), n, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := c.PredictScenarios(scs, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	measure("parallel/dispatch", 1, func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := m.Predict(pool[i%len(pool)]); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
	if warm.NsPerOp > 0 {
		rep.ScalarSpeedup = float64(interp.NsPerOp) / float64(warm.NsPerOp)
	}
	fmt.Printf("warm compiled scalar speedup: %.2fx\n", rep.ScalarSpeedup)

	if err := mergeBenchEntry(path, rep); err != nil {
		return err
	}
	fmt.Printf("predict benchmark merged into %s\n", path)
	return nil
}
