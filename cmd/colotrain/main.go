// Command colotrain collects (or loads) a Table V training dataset and
// trains and evaluates co-location performance models on it.
//
// Usage:
//
//	colotrain -machine 6core -out data6.csv          # collect and save
//	colotrain -in data6.csv -models linear-F,neural-net-F -partitions 50
//	colotrain -machine 12core -predict canneal -coapp cg -n 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/harness"
	"colocmodel/internal/simproc"
)

func main() {
	var (
		machine    = flag.String("machine", "6core", "machine to collect on: 6core or 12core")
		in         = flag.String("in", "", "load dataset from CSV instead of collecting")
		out        = flag.String("out", "", "save the collected dataset to CSV")
		models     = flag.String("models", "all", "comma-separated models (e.g. linear-A,neural-net-F) or 'all'")
		partitions = flag.Int("partitions", 100, "evaluation partitions")
		seed       = flag.Uint64("seed", 42, "seed")
		noise      = flag.Float64("noise", 0.01, "measurement noise sigma")
		predict    = flag.String("predict", "", "predict a scenario for this target app (trains neural-net-F)")
		saveModel  = flag.String("savemodel", "", "train neural-net-F on the dataset and save it as JSON")
		loadModel  = flag.String("loadmodel", "", "load a saved model for -predict instead of training")
		coapp      = flag.String("coapp", "cg", "co-app for -predict")
		n          = flag.Int("n", 1, "co-located copies for -predict")
		pstate     = flag.Int("pstate", 0, "P-state for -predict")
		benchTrain = flag.String("bench-train", "", "benchmark batched SCG training and the predict path; merge results into this trajectory JSON")
	)
	flag.Parse()
	if *benchTrain != "" {
		if err := runBenchTrain(*benchTrain); err != nil {
			fmt.Fprintln(os.Stderr, "colotrain:", err)
			os.Exit(1)
		}
		if err := runBenchPredict(*benchTrain); err != nil {
			fmt.Fprintln(os.Stderr, "colotrain:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*machine, *in, *out, *models, *partitions, *seed, *noise, *predict, *coapp, *n, *pstate, *saveModel, *loadModel); err != nil {
		fmt.Fprintln(os.Stderr, "colotrain:", err)
		os.Exit(1)
	}
}

func run(machine, in, out, models string, partitions int, seed uint64, noise float64,
	predict, coapp string, n, pstate int, saveModel, loadModel string) error {
	if loadModel != "" && predict != "" {
		return runPredictLoaded(loadModel, predict, coapp, n, pstate)
	}
	ds, err := obtainDataset(machine, in, seed, noise)
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %s, %d baselines, %d co-location records\n",
		ds.Machine, len(ds.Baselines), len(ds.Records))
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := ds.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("dataset written to %s\n", out)
	}

	if saveModel != "" {
		if err := trainAndSave(ds, seed, saveModel); err != nil {
			return err
		}
	}
	if predict != "" {
		return runPredict(ds, seed, predict, coapp, n, pstate)
	}
	if saveModel != "" {
		return nil
	}

	specs, err := selectSpecs(models, seed)
	if err != nil {
		return err
	}
	fmt.Printf("evaluating %d models with %d partitions (70/30 splits)...\n\n", len(specs), partitions)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "model\ttrain MPE\ttest MPE\ttrain NRMSE\ttest NRMSE\ttest MPE 95% CI")
	for _, spec := range specs {
		res, err := core.Evaluate(spec, ds, core.EvalConfig{Partitions: partitions, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%.2f%%\t%.2f%%\t%.2f%%\t%.2f%%\t±%.2f%%\n",
			spec, res.TrainMPE, res.TestMPE, res.TrainNRMSE, res.TestNRMSE, res.TestMPECI)
	}
	return w.Flush()
}

func obtainDataset(machine, in string, seed uint64, noise float64) (*harness.Dataset, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return harness.ReadCSV(f)
	}
	var spec simproc.Spec
	switch machine {
	case "6core":
		spec = simproc.XeonE5649()
	case "12core":
		spec = simproc.XeonE52697v2()
	default:
		return nil, fmt.Errorf("unknown machine %q (want 6core or 12core)", machine)
	}
	plan := harness.DefaultPlan(spec, seed)
	plan.NoiseSigma = noise
	fmt.Printf("collecting %d co-location runs on %s...\n", plan.RunCount(), spec.Name)
	return harness.Collect(plan)
}

func selectSpecs(models string, seed uint64) ([]core.Spec, error) {
	all := core.AllSpecs(seed)
	if models == "all" {
		return all, nil
	}
	byName := map[string]core.Spec{}
	for _, s := range all {
		byName[s.String()] = s
	}
	var out []core.Spec
	for _, name := range strings.Split(models, ",") {
		s, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown model %q (want e.g. linear-A or neural-net-F)", name)
		}
		out = append(out, s)
	}
	return out, nil
}

func runPredict(ds *harness.Dataset, seed uint64, target, coapp string, n, pstate int) error {
	setF, err := features.SetByName("F")
	if err != nil {
		return err
	}
	m, err := core.Train(core.Spec{Technique: core.NeuralNet, FeatureSet: setF, Seed: seed}, ds, ds.Records)
	if err != nil {
		return err
	}
	co := make([]string, n)
	for i := range co {
		co[i] = coapp
	}
	sc := features.Scenario{Target: target, CoApps: co, PState: pstate}
	pred, err := m.Predict(sc)
	if err != nil {
		return err
	}
	sd, err := m.PredictedSlowdown(sc)
	if err != nil {
		return err
	}
	fmt.Printf("prediction (neural-net-F on %s):\n", ds.Machine)
	fmt.Printf("  %s + %d x %s at P%d\n", target, n, coapp, pstate)
	fmt.Printf("  predicted execution time: %.1f s\n", pred)
	fmt.Printf("  predicted slowdown:       %.3f\n", sd)
	return nil
}

// trainAndSave trains neural-net-F on the dataset and writes it to path.
func trainAndSave(ds *harness.Dataset, seed uint64, path string) error {
	setF, err := features.SetByName("F")
	if err != nil {
		return err
	}
	m, err := core.Train(core.Spec{Technique: core.NeuralNet, FeatureSet: setF, Seed: seed}, ds, ds.Records)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("model written to %s\n", path)
	return nil
}

// runPredictLoaded predicts a scenario with a previously saved model.
func runPredictLoaded(path, target, coapp string, n, pstate int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := core.LoadModel(f)
	if err != nil {
		return err
	}
	co := make([]string, n)
	for i := range co {
		co[i] = coapp
	}
	sc := features.Scenario{Target: target, CoApps: co, PState: pstate}
	pred, err := m.Predict(sc)
	if err != nil {
		return err
	}
	sd, err := m.PredictedSlowdown(sc)
	if err != nil {
		return err
	}
	fmt.Printf("prediction (%s, loaded from %s):\n", m.Spec, path)
	fmt.Printf("  %s + %d x %s at P%d\n", target, n, coapp, pstate)
	fmt.Printf("  predicted execution time: %.1f s\n", pred)
	fmt.Printf("  predicted slowdown:       %.3f\n", sd)
	return nil
}
