package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSelectSpecs(t *testing.T) {
	all, err := selectSpecs("all", 1)
	if err != nil || len(all) != 12 {
		t.Fatalf("all: %d specs, %v", len(all), err)
	}
	two, err := selectSpecs("linear-A, neural-net-F", 1)
	if err != nil || len(two) != 2 {
		t.Fatalf("pair: %d specs, %v", len(two), err)
	}
	if two[0].String() != "linear-A" || two[1].String() != "neural-net-F" {
		t.Fatalf("specs = %v, %v", two[0], two[1])
	}
	if _, err := selectSpecs("linear-Z", 1); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestObtainDatasetErrors(t *testing.T) {
	if _, err := obtainDataset("pentium", "", 1, 0.01); err == nil {
		t.Fatal("bad machine accepted")
	}
	if _, err := obtainDataset("6core", "/does/not/exist.csv", 1, 0.01); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestEndToEndCollectSaveLoadEvaluate(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign collection is slow")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "ds.csv")
	// Collect the 6-core campaign, save it, evaluate one cheap model.
	if err := run("6core", "", out, "linear-A", 3, 1, 0.01, "", "", 0, 0, "", ""); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("dataset not written: %v", err)
	}
	// Reload from CSV and run a prediction.
	if err := run("", out, "", "", 0, 1, 0, "canneal", "cg", 2, 0, "", ""); err != nil {
		t.Fatal(err)
	}
	// Save a model from the CSV, then predict with the loaded model.
	modelPath := filepath.Join(dir, "model.json")
	if err := run("", out, "", "", 0, 1, 0, "", "", 0, 0, modelPath, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("", "", "", "", 0, 1, 0, "canneal", "cg", 3, 0, "", modelPath); err != nil {
		t.Fatal(err)
	}
}
