// Command coloserve is the online inference server: it loads one or
// more saved model artefacts into a named registry and serves
// predictions, batch predictions, and placement decisions over HTTP.
//
// Usage:
//
//	colotrain -machine 6core -savemodel model6.json     # produce an artefact
//	coloserve -model model6.json                        # serve it on :8080
//	coloserve -model m6=model6.json -model m12=model12.json -listen :9090
//
// Endpoints:
//
//	POST /v1/predict          one scenario → predicted time and slowdown
//	POST /v1/predict/batch    many scenarios, fanned out over a worker pool
//	POST /v1/schedule         jobs → interference-aware placement
//	GET  /v1/models           registry listing
//	POST /v1/models/reload    re-read artefacts from disk (atomic hot-swap)
//	GET  /healthz             liveness
//	GET  /metrics             Prometheus text metrics
//
// The server drains in-flight requests on SIGTERM/SIGINT before
// exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"colocmodel/internal/core"
	"colocmodel/internal/serve"
)

func main() {
	var (
		listen  = flag.String("listen", ":8080", "address to serve on")
		timeout = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		drain   = flag.Duration("drain", 15*time.Second, "shutdown drain budget for in-flight requests")
		cache   = flag.Int("cache", 65536, "prediction cache capacity in entries (negative disables)")
		workers = flag.Int("batch-workers", 0, "batch fan-out worker pool size (0 = GOMAXPROCS)")
		models  modelArgs
	)
	flag.Var(&models, "model", "model artefact to serve, as path or name=path (repeatable; first is the default)")
	flag.Parse()
	if err := run(*listen, *timeout, *drain, *cache, *workers, models); err != nil {
		fmt.Fprintln(os.Stderr, "coloserve:", err)
		os.Exit(1)
	}
}

// modelArgs collects repeated -model flags.
type modelArgs []string

func (m *modelArgs) String() string { return strings.Join(*m, ",") }
func (m *modelArgs) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// parseModelArg splits a -model value into a registry name and a path:
// "name=path" uses the explicit name, a bare path uses the file's base
// name without extension.
func parseModelArg(arg string) (name, path string, err error) {
	if i := strings.IndexByte(arg, '='); i >= 0 {
		name, path = arg[:i], arg[i+1:]
		if name == "" || path == "" {
			return "", "", fmt.Errorf("bad -model %q (want name=path)", arg)
		}
		return name, path, nil
	}
	base := filepath.Base(arg)
	name = strings.TrimSuffix(base, filepath.Ext(base))
	if name == "" || name == "." || name == string(filepath.Separator) {
		return "", "", fmt.Errorf("bad -model %q: cannot derive a model name", arg)
	}
	return name, arg, nil
}

// buildRegistry loads every -model artefact. Registration order follows
// the flag order, so the first -model is the default.
func buildRegistry(args []string) (*serve.Registry, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("no models: pass at least one -model path (see colotrain -savemodel)")
	}
	reg := serve.NewRegistry()
	for _, arg := range args {
		name, path, err := parseModelArg(arg)
		if err != nil {
			return nil, err
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		m, err := core.LoadModel(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
		if err := reg.Add(name, path, m); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

func run(listen string, timeout, drain time.Duration, cache, workers int, models modelArgs) error {
	reg, err := buildRegistry(models)
	if err != nil {
		return err
	}
	srv := serve.New(reg, serve.Config{
		RequestTimeout: timeout,
		BatchWorkers:   workers,
		CacheSize:      cache,
	})
	for _, info := range reg.List() {
		def := ""
		if info.Default {
			def = " (default)"
		}
		fmt.Printf("model %s%s: %s on %s, %d apps, %d P-states [%s]\n",
			info.Name, def, info.Spec, info.Machine, len(info.Apps), info.PStates, info.Path)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("serving on %s (timeout %s, cache %d, drain %s)\n", listen, timeout, cache, drain)
	if err := srv.ListenAndServe(ctx, listen, drain); err != nil {
		return err
	}
	fmt.Println("drained, exiting")
	return nil
}
