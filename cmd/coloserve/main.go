// Command coloserve is the online inference server: it loads one or
// more saved model artefacts into a named registry and serves
// predictions, batch predictions, and placement decisions over HTTP.
// With -adapt it also runs the online adaptation loop: deployment
// observations are logged durably, prediction residuals are watched
// for drift, and a tripped detector triggers gated background
// retraining with atomic promotion.
//
// Usage:
//
//	colotrain -machine 6core -savemodel model6.json     # produce an artefact
//	coloserve -model model6.json                        # serve it on :8080
//	coloserve -model m6=model6.json -model m12=model12.json -listen :9090
//	coloserve -model model6.json -adapt -obslog /var/lib/coloserve/obs \
//	          -dataset sweep6.csv                       # full adaptation loop
//
// Endpoints:
//
//	POST /v1/predict          one scenario → predicted time and slowdown
//	POST /v1/predict/batch    many scenarios, fanned out over a worker pool
//	POST /v1/schedule         jobs → interference-aware placement
//	GET  /v1/models           registry listing
//	POST /v1/models/reload    re-read artefacts from disk (atomic hot-swap)
//	POST /v1/observations     report measured runtimes (single or batch)
//	GET  /v1/drift            per-(model × target) residual drift report
//	POST /v1/retrain          trigger (or run, with {"wait":true}) retraining
//	GET  /v1/retrain/status   retraining attempt history
//	GET  /v1/version          build and API version info
//	GET  /v1/traces           recent retained traces (slow/error/retrain)
//	GET  /v1/slo              SLO burn-rate verdict (ok | warn | page)
//	GET  /healthz             liveness (?verbose=1 adds uptime, generations, build info)
//	GET  /metrics             Prometheus text metrics
//
// Observability: every request gets an X-Request-ID (client-supplied
// or generated), structured request logs go to stderr (-log-format),
// per-stage timings are traced into a bounded ring served at
// /v1/traces (-trace-ring, -slow-ms), and -pprof exposes
// net/http/pprof under /debug/pprof/.
//
// The server drains in-flight requests on SIGTERM/SIGINT before
// exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"colocmodel/internal/core"
	"colocmodel/internal/drift"
	"colocmodel/internal/feedback"
	"colocmodel/internal/harness"
	"colocmodel/internal/obs"
	"colocmodel/internal/retrain"
	"colocmodel/internal/serve"
)

func main() {
	var (
		listen  = flag.String("listen", ":8080", "address to serve on")
		timeout = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		drain   = flag.Duration("drain", 15*time.Second, "shutdown drain budget for in-flight requests")
		cache   = flag.Int("cache", 65536, "prediction cache capacity in entries (negative disables)")
		workers = flag.Int("batch-workers", 0, "batch fan-out worker pool size (0 = GOMAXPROCS)")

		logFormat = flag.String("log-format", "json", "structured request log format: json, text, or off")
		slowMS    = flag.Float64("slow-ms", 100, "slow-request threshold in ms for log sampling and trace retention (0 = retain and warn on everything)")
		traceRing = flag.Int("trace-ring", 256, "retained-trace ring capacity (0 disables tracing)")
		sloObj    = flag.Float64("slo-objective", 0.999, "predict success-rate objective for /v1/slo burn-rate alerts (0 disables)")
		sloLat    = flag.Duration("slo-latency", 250*time.Millisecond, "predict latency target counted against the SLO (0 = availability only)")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")

		adapt     = flag.Bool("adapt", false, "enable the online adaptation loop (observations, drift detection, gated retraining)")
		obslog    = flag.String("obslog", "", "directory for the durable observation log (empty = in-memory only)")
		dataset   = flag.String("dataset", "", "offline training sweep CSV to augment with observations when retraining (see colotrain -savecsv)")
		margin    = flag.Float64("retrain-margin", 0.25, "percentage points by which a retrained candidate's holdout MPE must beat the incumbent")
		lambda    = flag.Float64("drift-lambda", 50, "Page-Hinkley trip threshold on the residual stream")
		minObs    = flag.Int("retrain-min-obs", 30, "fewest logged observations before a retraining attempt will run")
		obsCommit = flag.Duration("obs-commit-interval", 0, "group-commit hold window for observation ingest (0 = commit whatever is queued immediately)")
		obsQueue  = flag.Int("obs-queue", 0, "observation commit queue capacity; writers park here awaiting their group fsync (0 = default 1024)")
		obsRetain = flag.String("obs-retention", "", "observation log retention as size and/or age, comma-separated (e.g. 512MB, 72h, 1GiB,7d); empty keeps everything")
		models    modelArgs
	)
	flag.Var(&models, "model", "model artefact to serve, as path or name=path (repeatable; first is the default)")
	flag.Parse()
	retention, err := parseRetention(*obsRetain)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coloserve:", err)
		os.Exit(1)
	}
	cfg := adaptArgs{enabled: *adapt, obslog: *obslog, dataset: *dataset, margin: *margin, lambda: *lambda, minObs: *minObs,
		commitInterval: *obsCommit, queue: *obsQueue, retention: retention}
	ocfg := obsArgs{logFormat: *logFormat, slowMS: *slowMS, traceRing: *traceRing,
		sloObjective: *sloObj, sloLatency: *sloLat, pprof: *pprofOn}
	if err := run(*listen, *timeout, *drain, *cache, *workers, models, cfg, ocfg); err != nil {
		fmt.Fprintln(os.Stderr, "coloserve:", err)
		os.Exit(1)
	}
}

// modelArgs collects repeated -model flags.
type modelArgs []string

func (m *modelArgs) String() string { return strings.Join(*m, ",") }
func (m *modelArgs) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// adaptArgs carries the adaptation flags into run.
type adaptArgs struct {
	enabled        bool
	obslog         string
	dataset        string
	margin         float64
	lambda         float64
	minObs         int
	commitInterval time.Duration
	queue          int
	retention      feedback.Retention
}

// parseRetention parses the -obs-retention flag: a comma-separated list
// of a byte size (decimal KB/MB/GB/TB or binary KiB/MiB/GiB/TiB
// suffixes) and/or a maximum age (a Go duration, with "d" accepted for
// days). Either bound alone is fine; empty means keep everything.
func parseRetention(s string) (feedback.Retention, error) {
	var r feedback.Retention
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if n, ok, err := parseByteSize(part); err != nil {
			return r, fmt.Errorf("-obs-retention %q: %w", part, err)
		} else if ok {
			r.MaxBytes = n
			continue
		}
		// Accept "7d" style ages on top of time.ParseDuration units.
		if i := len(part) - 1; i > 0 && part[i] == 'd' {
			if days, err := strconv.ParseFloat(part[:i], 64); err == nil {
				r.MaxAge = time.Duration(days * 24 * float64(time.Hour))
				continue
			}
		}
		d, err := time.ParseDuration(part)
		if err != nil {
			return r, fmt.Errorf("-obs-retention %q: want a size (512MB) or age (72h)", part)
		}
		r.MaxAge = d
	}
	if r.MaxBytes < 0 || r.MaxAge < 0 {
		return r, fmt.Errorf("-obs-retention: negative bound")
	}
	return r, nil
}

// parseByteSize parses "512MB"-style sizes; ok reports whether the
// string looked like a size at all (so non-sizes fall through to the
// duration parser without an error).
func parseByteSize(s string) (n int64, ok bool, err error) {
	units := []struct {
		suffix string
		mult   int64
	}{
		{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30}, {"TiB", 1 << 40},
		{"KB", 1e3}, {"MB", 1e6}, {"GB", 1e9}, {"TB", 1e12}, {"B", 1},
	}
	for _, u := range units {
		if !strings.HasSuffix(s, u.suffix) {
			continue
		}
		num := strings.TrimSpace(strings.TrimSuffix(s, u.suffix))
		v, perr := strconv.ParseFloat(num, 64)
		if perr != nil {
			return 0, true, fmt.Errorf("bad size number %q", num)
		}
		if v < 0 {
			return 0, true, fmt.Errorf("negative size")
		}
		return int64(v * float64(u.mult)), true, nil
	}
	return 0, false, nil
}

// obsArgs carries the observability flags into run.
type obsArgs struct {
	logFormat    string
	slowMS       float64
	traceRing    int
	sloObjective float64
	sloLatency   time.Duration
	pprof        bool
}

// serveConfig translates the observability flags into serve.Config
// fields: -slow-ms 0 means "everything is slow" (negative threshold),
// -trace-ring 0 disables tracing (negative capacity).
func (o obsArgs) serveConfig(cfg *serve.Config) error {
	logger, err := obs.NewLogger(os.Stderr, o.logFormat, 0)
	if err != nil {
		return err
	}
	cfg.Logger = logger
	if o.slowMS < 0 {
		return fmt.Errorf("bad -slow-ms %g: must be >= 0", o.slowMS)
	}
	if o.slowMS == 0 {
		cfg.SlowThreshold = -1
	} else {
		cfg.SlowThreshold = time.Duration(o.slowMS * float64(time.Millisecond))
	}
	if o.traceRing < 0 {
		return fmt.Errorf("bad -trace-ring %d: must be >= 0", o.traceRing)
	}
	if o.traceRing == 0 {
		cfg.TraceRing = -1
	} else {
		cfg.TraceRing = o.traceRing
	}
	if o.sloObjective < 0 || o.sloObjective >= 1 {
		return fmt.Errorf("bad -slo-objective %g: must be in [0, 1)", o.sloObjective)
	}
	if o.sloObjective == 0 {
		cfg.SLOObjective = -1
	} else {
		cfg.SLOObjective = o.sloObjective
	}
	if o.sloLatency < 0 {
		return fmt.Errorf("bad -slo-latency %s: must be >= 0", o.sloLatency)
	}
	if o.sloLatency == 0 {
		cfg.SLOLatencyTarget = -1
	} else {
		cfg.SLOLatencyTarget = o.sloLatency
	}
	return nil
}

// parseModelArg splits a -model value into a registry name and a path:
// "name=path" uses the explicit name, a bare path uses the file's base
// name without extension.
func parseModelArg(arg string) (name, path string, err error) {
	if i := strings.IndexByte(arg, '='); i >= 0 {
		name, path = arg[:i], arg[i+1:]
		if name == "" || path == "" {
			return "", "", fmt.Errorf("bad -model %q (want name=path)", arg)
		}
		return name, path, nil
	}
	base := filepath.Base(arg)
	name = strings.TrimSuffix(base, filepath.Ext(base))
	if name == "" || name == "." || name == string(filepath.Separator) {
		return "", "", fmt.Errorf("bad -model %q: cannot derive a model name", arg)
	}
	return name, arg, nil
}

// buildRegistry loads every -model artefact. Registration order follows
// the flag order, so the first -model is the default.
func buildRegistry(args []string) (*serve.Registry, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("no models: pass at least one -model path (see colotrain -savemodel)")
	}
	reg := serve.NewRegistry()
	for _, arg := range args {
		name, path, err := parseModelArg(arg)
		if err != nil {
			return nil, err
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		m, err := core.LoadModel(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
		if err := reg.Add(name, path, m); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// buildAdaptation assembles the adaptation loop around the registry's
// default model: durable observation log, drift monitor, and the
// retraining controller (augmenting the optional offline sweep).
func buildAdaptation(a adaptArgs, reg *serve.Registry, srv *serve.Server) (*retrain.Controller, error) {
	fcfg := feedback.Config{
		Dir:            a.obslog,
		Sync:           a.obslog != "",
		CommitInterval: a.commitInterval,
		Queue:          a.queue,
		Retention:      a.retention,
	}
	if a.retention.MaxBytes > 0 || a.retention.MaxAge > 0 {
		// Retention drops whole segments; folding sealed segments into
		// chained compacted files first keeps the audit trail
		// tamper-evident while bounding the directory.
		fcfg.CompactAfter = 4
	}
	log, err := feedback.Open(fcfg)
	if err != nil {
		return nil, fmt.Errorf("opening observation log: %w", err)
	}
	var base *harness.Dataset
	if a.dataset != "" {
		f, err := os.Open(a.dataset)
		if err != nil {
			return nil, err
		}
		base, err = harness.ReadCSV(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", a.dataset, err)
		}
	}
	ctrl, err := retrain.New(retrain.Config{
		Model:           reg.DefaultName(),
		MarginPct:       a.margin,
		MinObservations: a.minObs,
		Seed:            1,
	}, reg, base, log)
	if err != nil {
		return nil, err
	}
	if err := srv.EnableAdaptation(serve.Adaptation{
		Log:         log,
		Monitor:     drift.NewMonitor(drift.Config{Lambda: a.lambda}),
		Controller:  ctrl,
		AutoRetrain: true,
	}); err != nil {
		return nil, err
	}
	return ctrl, nil
}

func run(listen string, timeout, drain time.Duration, cache, workers int, models modelArgs, a adaptArgs, o obsArgs) error {
	reg, err := buildRegistry(models)
	if err != nil {
		return err
	}
	cfg := serve.Config{
		RequestTimeout: timeout,
		BatchWorkers:   workers,
		CacheSize:      cache,
	}
	if err := o.serveConfig(&cfg); err != nil {
		return err
	}
	srv := serve.New(reg, cfg)
	if o.pprof {
		srv.EnablePprof()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if a.enabled {
		ctrl, err := buildAdaptation(a, reg, srv)
		if err != nil {
			return err
		}
		ctrl.Start(ctx)
		logDesc := "in-memory"
		if a.obslog != "" {
			logDesc = a.obslog
		}
		fmt.Printf("adaptation on: obslog %s, drift lambda %g, retrain margin %g, min obs %d\n",
			logDesc, a.lambda, a.margin, a.minObs)
	}
	for _, info := range reg.List() {
		def := ""
		if info.Default {
			def = " (default)"
		}
		fmt.Printf("model %s%s: %s on %s, %d apps, %d P-states [%s]\n",
			info.Name, def, info.Spec, info.Machine, len(info.Apps), info.PStates, info.Path)
	}
	tracing := "off"
	if o.traceRing > 0 {
		tracing = fmt.Sprintf("ring %d, slow %gms", o.traceRing, o.slowMS)
	}
	pprofDesc := ""
	if o.pprof {
		pprofDesc = ", pprof on"
	}
	slo := "off"
	if o.sloObjective > 0 {
		slo = fmt.Sprintf("%g objective, latency %s", o.sloObjective, o.sloLatency)
	}
	fmt.Printf("observability: logs %s, traces %s, slo %s%s\n", o.logFormat, tracing, slo, pprofDesc)
	fmt.Printf("serving on %s (timeout %s, cache %d, drain %s)\n", listen, timeout, cache, drain)
	if err := srv.ListenAndServe(ctx, listen, drain); err != nil {
		return err
	}
	fmt.Println("drained, exiting")
	return nil
}
