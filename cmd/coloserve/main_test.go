package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/harness"
	"colocmodel/internal/serve"
	"colocmodel/internal/simproc"
	"colocmodel/internal/workload"
)

func TestParseModelArg(t *testing.T) {
	name, path, err := parseModelArg("nn6=models/m6.json")
	if err != nil || name != "nn6" || path != "models/m6.json" {
		t.Fatalf("got %q %q %v", name, path, err)
	}
	name, path, err = parseModelArg("models/m6.json")
	if err != nil || name != "m6" || path != "models/m6.json" {
		t.Fatalf("got %q %q %v", name, path, err)
	}
	for _, bad := range []string{"=path", "name=", ""} {
		if _, _, err := parseModelArg(bad); err == nil {
			t.Fatalf("parseModelArg(%q) accepted", bad)
		}
	}
}

// saveTestModel trains a small linear model and writes its artefact.
func saveTestModel(t *testing.T, path string) *core.Model {
	t.Helper()
	cg, _ := workload.ByName("cg")
	ep, _ := workload.ByName("ep")
	ds, err := harness.Collect(harness.Plan{
		Spec:     simproc.XeonE5649(),
		Targets:  []workload.App{cg, ep},
		CoApps:   []workload.App{cg, ep},
		CoCounts: []int{1, 2},
		PStates:  []int{0},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	set, _ := features.SetByName("C")
	m, err := core.Train(core.Spec{Technique: core.Linear, FeatureSet: set}, ds, ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildRegistry(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m6.json")
	saveTestModel(t, path)

	reg, err := buildRegistry([]string{"primary=" + path, path})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 2 || reg.DefaultName() != "primary" {
		t.Fatalf("registry: len %d default %q", reg.Len(), reg.DefaultName())
	}

	if _, err := buildRegistry(nil); err == nil {
		t.Fatal("empty model list accepted")
	}
	if _, err := buildRegistry([]string{filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("missing artefact accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := buildRegistry([]string{bad}); err == nil {
		t.Fatal("corrupt artefact accepted")
	}
	if _, err := buildRegistry([]string{"a=" + path, "a=" + path}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

// TestEndToEnd exercises the acceptance path: save an artefact, serve
// it, predict over HTTP, compare with the in-process model, observe a
// cache hit, and shut down gracefully.
func TestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m6.json")
	m := saveTestModel(t, path)

	reg, err := buildRegistry([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(reg, serve.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln, 5*time.Second) }()
	url := "http://" + ln.Addr().String()

	for i := 0; i < 50; i++ {
		if r, err := http.Get(url + "/healthz"); err == nil {
			r.Body.Close()
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	sc := features.Scenario{Target: "cg", CoApps: []string{"ep", "ep"}, PState: 0}
	want, err := m.PredictedSlowdown(sc)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{"target": sc.Target, "co_apps": sc.CoApps, "pstate": sc.PState})
	var got struct {
		Slowdown float64 `json:"predicted_slowdown"`
		Cached   bool    `json:"cached"`
	}
	for i := 0; i < 2; i++ {
		resp, err := http.Post(url+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got.Slowdown != want {
			t.Fatalf("request %d: slowdown %v, model says %v", i, got.Slowdown, want)
		}
	}
	if !got.Cached {
		t.Fatal("repeated request not served from cache")
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}
