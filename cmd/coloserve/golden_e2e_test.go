package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/harness"
	"colocmodel/internal/mlp"
	"colocmodel/internal/serve"
	"colocmodel/internal/simproc"
	"colocmodel/internal/workload"
)

// TestGoldenPathBitForBit is the full offline→online golden path: run
// the data-collection harness, train BOTH model families, save their
// artefacts, load them into a serve registry from disk, and assert that
// every HTTP prediction matches the original in-memory model's
// prediction bit-for-bit. Artefacts are JSON with shortest-round-trip
// float64 marshaling, so save→load is exact and any divergence means
// the serialisation or the serving path corrupted the model.
func TestGoldenPathBitForBit(t *testing.T) {
	cg, _ := workload.ByName("cg")
	ep, _ := workload.ByName("ep")
	ds, err := harness.Collect(harness.Plan{
		Spec:       simproc.XeonE5649(),
		Targets:    []workload.App{cg, ep},
		CoApps:     []workload.App{cg, ep},
		CoCounts:   []int{1, 2},
		PStates:    []int{0, 1},
		NoiseSigma: 0.01,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	set, err := features.SetByName("F")
	if err != nil {
		t.Fatal(err)
	}
	specs := map[string]core.Spec{
		"lin": {Technique: core.Linear, FeatureSet: set, Seed: 1},
		// A deliberately short SCG run: the golden path cares about
		// exactness of the pipeline, not model quality.
		"nn": {Technique: core.NeuralNet, FeatureSet: set, Seed: 2,
			SCG: mlp.SCGConfig{MaxIter: 25}},
	}

	dir := t.TempDir()
	trained := make(map[string]*core.Model, len(specs))
	var args []string
	for _, name := range []string{"lin", "nn"} {
		m, err := core.Train(specs[name], ds, ds.Records)
		if err != nil {
			t.Fatalf("training %s: %v", name, err)
		}
		trained[name] = m
		path := filepath.Join(dir, name+".json")
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		args = append(args, name+"="+path)
	}

	// Load from disk exactly as the coloserve binary does.
	reg, err := buildRegistry(args)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(reg, serve.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln, 5*time.Second) }()
	url := "http://" + ln.Addr().String()
	for i := 0; i < 50; i++ {
		if r, err := http.Get(url + "/healthz"); err == nil {
			r.Body.Close()
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	scenarios := []features.Scenario{
		{Target: "cg", PState: 0},
		{Target: "cg", CoApps: []string{"ep"}, PState: 0},
		{Target: "cg", CoApps: []string{"ep", "ep"}, PState: 1},
		{Target: "ep", CoApps: []string{"cg"}, PState: 1},
		{Target: "ep", CoApps: []string{"cg", "cg"}, PState: 0},
		{Target: "ep", CoApps: []string{"cg", "ep"}, PState: 1},
	}
	for name, m := range trained {
		for _, sc := range scenarios {
			wantSec, err := m.Predict(sc)
			if err != nil {
				t.Fatal(err)
			}
			wantSlow, err := m.PredictedSlowdown(sc)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := json.Marshal(serve.PredictRequest{
				Model: name,
				ScenarioRequest: serve.ScenarioRequest{
					Target: sc.Target, CoApps: sc.CoApps, PState: sc.PState,
				},
			})
			resp, err := http.Post(url+"/v1/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			var got serve.PredictResponse
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s %+v: status %d", name, sc, resp.StatusCode)
			}
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			// Bit-for-bit: JSON float64 round-trips are exact, so the
			// served value must equal the in-memory prediction precisely.
			if got.PredictedSeconds != wantSec {
				t.Errorf("%s %+v: served %v seconds, model predicts %v",
					name, sc, got.PredictedSeconds, wantSec)
			}
			if got.PredictedSlowdown != wantSlow {
				t.Errorf("%s %+v: served slowdown %v, model predicts %v",
					name, sc, got.PredictedSlowdown, wantSlow)
			}
			if got.Model != name || got.Spec != trained[name].Spec.String() {
				t.Errorf("%s: response names model %q spec %q", name, got.Model, got.Spec)
			}
		}
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}
