package main

import (
	"os"
	"path/filepath"
	"testing"
)

// The static tables need no data collection, so they exercise run's
// dispatch cheaply.
func TestRunStaticTables(t *testing.T) {
	for _, table := range []int{1, 2, 4, 5} {
		if err := run(options{partitions: 5, seed: 1, noise: 0.01, table: table}); err != nil {
			t.Fatalf("table %d: %v", table, err)
		}
	}
}

func TestRunSingleFigureWithSVG(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration is slow")
	}
	dir := t.TempDir()
	if err := run(options{partitions: 3, seed: 1, noise: 0.01, figure: "5a", svgDir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "figure5a.svg")); err != nil {
		t.Fatalf("SVG not written: %v", err)
	}
}

func TestWriteSVGErrors(t *testing.T) {
	// Writing into a path that is a file must fail.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeSVG(filepath.Join(blocker, "sub"), "1", "<svg/>"); err == nil {
		t.Fatal("writing under a file accepted")
	}
}
