// Command coloexp regenerates every table and figure of the paper's
// evaluation section on the simulated substrate.
//
// Usage:
//
//	coloexp [-partitions N] [-seed S] [-table N] [-figure N|5a|5b] [-pca] [-all]
//
// With no selection flags, -all is assumed. Figures 1–4 run the full
// twelve-model repeated-random-subsampling evaluation and dominate the
// runtime; lower -partitions for a quick look.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"colocmodel/internal/experiments"
)

func main() {
	var (
		partitions = flag.Int("partitions", 100, "repeated random sub-sampling partitions (paper: 100)")
		seed       = flag.Uint64("seed", 42, "experiment seed")
		noise      = flag.Float64("noise", 0.01, "measurement noise sigma")
		table      = flag.Int("table", 0, "regenerate one table (1-6)")
		figure     = flag.String("figure", "", "regenerate one figure (1-4, 5a, 5b)")
		pcaFlag    = flag.Bool("pca", false, "run the Section III-B PCA feature ranking")
		genFlag    = flag.Bool("generalize", false, "run the Section IV-B3 generalisation experiment")
		interFlag  = flag.Bool("interactions", false, "run the linear-interactions ablation")
		corrFlag   = flag.Bool("correlations", false, "print the Table I feature correlation matrix")
		microFlag  = flag.Bool("micro", false, "run the microbenchmark-transfer experiment")
		phaseFlag  = flag.Bool("phases", false, "run the phase-sensitivity experiment")
		mixedFlag  = flag.Bool("mixed", false, "run the mixed-training ablation")
		scaleFlag  = flag.Bool("scaling", false, "run the problem-size scaling experiment")
		svgDir     = flag.String("svgdir", "", "also write figures (and the Table VI sweep) as SVG files to this directory")
		all        = flag.Bool("all", false, "regenerate everything")
	)
	flag.Parse()
	opts := options{
		partitions: *partitions,
		seed:       *seed,
		noise:      *noise,
		table:      *table,
		figure:     *figure,
		pca:        *pcaFlag,
		generalize: *genFlag,
		interact:   *interFlag,
		correlate:  *corrFlag,
		micro:      *microFlag,
		phases:     *phaseFlag,
		mixed:      *mixedFlag,
		scaling:    *scaleFlag,
		all:        *all,
		svgDir:     *svgDir,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "coloexp:", err)
		os.Exit(1)
	}
}

// options collects the command's parsed flags.
type options struct {
	partitions int
	seed       uint64
	noise      float64
	table      int
	figure     string
	pca        bool
	generalize bool
	interact   bool
	correlate  bool
	micro      bool
	phases     bool
	mixed      bool
	scaling    bool
	all        bool
	svgDir     string
}

// selected reports whether any specific experiment flag was given.
func (o options) selected() bool {
	return o.table != 0 || o.figure != "" || o.pca || o.generalize ||
		o.interact || o.correlate || o.micro || o.phases || o.mixed || o.scaling
}

func run(o options) error {
	all := o.all
	if !o.selected() {
		all = true
	}
	table, figure, svgDir := o.table, o.figure, o.svgDir

	// Static tables need no data collection.
	if all || table == 1 {
		fmt.Println("=== Table I: Model Features ===")
		fmt.Println(experiments.Table1())
	}
	if all || table == 2 {
		fmt.Println("=== Table II: Sets of Model Feature Groups ===")
		fmt.Println(experiments.Table2())
	}
	if all || table == 4 {
		fmt.Println("=== Table IV: Multicore Processors Used for Validation ===")
		fmt.Println(experiments.Table4())
	}
	if all || table == 5 {
		fmt.Println("=== Table V: Training Setup ===")
		fmt.Println(experiments.Table5())
	}
	needSuite := all || table == 3 || table == 6 || figure != "" || o.pca || o.generalize ||
		o.interact || o.correlate || o.micro || o.phases || o.mixed || o.scaling
	if !needSuite {
		return nil
	}

	cfg := experiments.Config{Partitions: o.partitions, Seed: o.seed, NoiseSigma: o.noise}
	fmt.Printf("collecting Table V datasets on both machines (seed %d)...\n\n", o.seed)
	suite, err := experiments.NewSuite(cfg)
	if err != nil {
		return err
	}

	if all || table == 3 {
		rows, err := suite.Table3()
		if err != nil {
			return err
		}
		fmt.Println("=== Table III: Benchmark Applications (measured baselines) ===")
		fmt.Println(experiments.RenderTable3(rows))
	}
	if all || o.pca {
		rows, err := suite.PCARanking()
		if err != nil {
			return err
		}
		fmt.Println("=== Section III-B: PCA Feature Ranking ===")
		fmt.Println(experiments.RenderPCARanking(rows))
	}
	if all || table == 6 {
		res, err := suite.Table6()
		if err != nil {
			return err
		}
		fmt.Println("=== Table VI: canneal vs. increasing cg co-location (12-core) ===")
		fmt.Println(experiments.RenderTable6(res))
		if svgDir != "" {
			svg, err := experiments.Table6SVG(res)
			if err != nil {
				return err
			}
			if err := writeSVG(svgDir, "table6", svg); err != nil {
				return err
			}
		}
	}
	for n := 1; n <= 4; n++ {
		if all || figure == fmt.Sprint(n) {
			f, err := suite.Figure(n)
			if err != nil {
				return err
			}
			fmt.Println("===", "Figure", n, "===")
			fmt.Println(experiments.RenderFigure(f))
			if svgDir != "" {
				svg, err := experiments.FigureSVG(f)
				if err != nil {
					return err
				}
				if err := writeSVG(svgDir, fmt.Sprint(n), svg); err != nil {
					return err
				}
			}
		}
	}
	if all || figure == "5a" {
		rows, err := suite.Figure5a()
		if err != nil {
			return err
		}
		fmt.Println("=== Figure 5(a) ===")
		fmt.Println(experiments.RenderFigure5a(rows))
		if svgDir != "" {
			svg, err := experiments.Figure5aSVG(rows)
			if err != nil {
				return err
			}
			if err := writeSVG(svgDir, "5a", svg); err != nil {
				return err
			}
		}
	}
	if all || figure == "5b" {
		res, err := suite.Figure5b()
		if err != nil {
			return err
		}
		fmt.Println("=== Figure 5(b) ===")
		fmt.Println(experiments.RenderFigure5b(res))
		if svgDir != "" {
			svg, err := experiments.Figure5bSVG(res)
			if err != nil {
				return err
			}
			if err := writeSVG(svgDir, "5b", svg); err != nil {
				return err
			}
		}
	}
	if all || o.generalize {
		cases, err := suite.Generalization()
		if err != nil {
			return err
		}
		fmt.Println("=== Extension: out-of-sample generalization (Section IV-B3) ===")
		fmt.Println(experiments.RenderGeneralization(cases))
	}
	if all || o.interact {
		rows, err := suite.InteractionAblation()
		if err != nil {
			return err
		}
		fmt.Println("=== Ablation: linear models with interaction terms ===")
		fmt.Println(experiments.RenderInteractionAblation(rows))
	}
	if all || o.correlate {
		m, fs, err := suite.FeatureCorrelations()
		if err != nil {
			return err
		}
		fmt.Println("=== Feature correlation structure ===")
		fmt.Println(experiments.RenderFeatureCorrelations(m, fs))
	}
	if all || o.micro {
		rows, err := suite.MicrobenchmarkTransfer()
		if err != nil {
			return err
		}
		fmt.Println("=== Extension: microbenchmark transfer (validity boundary) ===")
		fmt.Println(experiments.RenderMicrobenchmarkTransfer(rows))
	}
	if all || o.phases {
		rows, err := suite.PhaseSensitivity(nil)
		if err != nil {
			return err
		}
		fmt.Println("=== Extension: phase sensitivity (Section I claim) ===")
		fmt.Println(experiments.RenderPhaseSensitivity(rows))
	}
	if all || o.mixed {
		rows, err := suite.MixedTraining(0)
		if err != nil {
			return err
		}
		fmt.Println("=== Ablation: homogeneous vs. mixed training data ===")
		fmt.Println(experiments.RenderMixedTraining(rows))
	}
	if all || o.scaling {
		rows, err := suite.ProblemSizeScaling()
		if err != nil {
			return err
		}
		fmt.Println("=== Extension: problem-size scaling (validity boundary) ===")
		fmt.Println(experiments.RenderProblemSizeScaling(rows))
	}
	return nil
}

// writeSVG writes one rendered figure to svgDir, creating the directory
// if needed.
func writeSVG(dir, id, svg string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, experiments.SVGName(id))
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}
